//! Property-based tests for the path simulator.

use proptest::prelude::*;
use qem_netsim::{
    AqmConfig, Asn, DscpPolicy, EcnPolicy, Hop, IcmpBehavior, Path, Router, SimDuration,
    TransitOutcome,
};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn arb_policy() -> impl Strategy<Value = EcnPolicy> {
    prop_oneof![
        Just(EcnPolicy::Pass),
        Just(EcnPolicy::ClearEcn),
        Just(EcnPolicy::RemarkEct0ToEct1),
        Just(EcnPolicy::RemarkEctToNotEct),
        Just(EcnPolicy::MarkAllCe),
        Just(EcnPolicy::BleachTos),
    ]
}

fn arb_ecn() -> impl Strategy<Value = EcnCodepoint> {
    prop_oneof![
        Just(EcnCodepoint::NotEct),
        Just(EcnCodepoint::Ect0),
        Just(EcnCodepoint::Ect1),
        Just(EcnCodepoint::Ce),
    ]
}

fn datagram(ttl: u8, ecn: EcnCodepoint) -> IpDatagram {
    IpDatagram::new(
        IpHeader::V4(
            Ipv4Header::new(
                Ipv4Addr::new(192, 0, 2, 1),
                Ipv4Addr::new(203, 0, 113, 9),
                IpProtocol::Udp,
                ttl,
            )
            .with_ecn(ecn),
        ),
        vec![0xaa; 64],
    )
}

fn build_path(policies: &[EcnPolicy], loss: f64, silent: bool) -> Path {
    Path::new(
        policies
            .iter()
            .enumerate()
            .map(|(i, policy)| {
                let mut router =
                    Router::transparent(i as u32 + 1, Asn(100 + i as u32)).with_ecn_policy(*policy);
                if silent {
                    router = router.with_icmp(IcmpBehavior::silent());
                }
                Hop::new(router)
                    .with_delay(SimDuration::from_millis(1 + i as u64))
                    .with_loss(loss)
            })
            .collect(),
    )
}

proptest! {
    /// Policy application is a pure function: a lossless path always delivers
    /// and the arrival codepoint equals the composition of the policies.
    #[test]
    fn lossless_transit_matches_policy_composition(
        policies in proptest::collection::vec(arb_policy(), 0..10),
        sent in arb_ecn(),
        seed in any::<u64>(),
    ) {
        let path = build_path(&policies, 0.0, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = path.transit(&datagram(64, sent), &mut rng);
        let expected = path.expected_arrival_ecn(sent);
        match outcome {
            TransitOutcome::Delivered { datagram, delay } => {
                prop_assert_eq!(datagram.header.ecn(), expected);
                prop_assert_eq!(delay, path.one_way_delay());
                prop_assert_eq!(datagram.header.ttl(), 64 - path.len() as u8);
            }
            other => prop_assert!(false, "lossless path must deliver, got {other:?}"),
        }
    }

    /// A policy can never resurrect an ECN mark: once a packet is not-ECT it
    /// can only stay not-ECT on standards-following and bleaching routers.
    #[test]
    fn not_ect_never_becomes_ect(policies in proptest::collection::vec(arb_policy(), 0..10)) {
        let path = build_path(&policies, 0.0, false);
        prop_assert_eq!(path.expected_arrival_ecn(EcnCodepoint::NotEct), EcnCodepoint::NotEct);
    }

    /// TTL expiry happens at exactly the hop the TTL allows, and the ICMP
    /// response (when the router answers) travels back to the original sender.
    #[test]
    fn ttl_expiry_is_positional(
        hops in 1usize..10,
        ttl in 1u8..10,
        seed in any::<u64>(),
    ) {
        let policies = vec![EcnPolicy::Pass; hops];
        let path = build_path(&policies, 0.0, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = path.transit(&datagram(ttl, EcnCodepoint::Ect0), &mut rng);
        if (ttl as usize) <= hops {
            match outcome {
                TransitOutcome::TimeExceeded { at_hop, response, .. } => {
                    prop_assert_eq!(at_hop, ttl as usize - 1);
                    prop_assert_eq!(response.header.dst(), "192.0.2.1".parse::<std::net::IpAddr>().unwrap());
                    prop_assert_eq!(response.header.protocol(), IpProtocol::Icmp);
                }
                other => prop_assert!(false, "expected TimeExceeded, got {other:?}"),
            }
        } else {
            prop_assert!(outcome.is_delivered());
        }
    }

    /// Fully lossy paths never deliver; fully silent routers never answer.
    #[test]
    fn total_loss_and_silence(
        hops in 1usize..8,
        ttl in 1u8..6,
        seed in any::<u64>(),
    ) {
        let policies = vec![EcnPolicy::Pass; hops];
        let lossy = build_path(&policies, 1.0, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let dropped_at_first_hop = matches!(
            lossy.transit(&datagram(64, EcnCodepoint::Ect0), &mut rng),
            TransitOutcome::Dropped { at_hop: 0 }
        );
        prop_assert!(dropped_at_first_hop);
        let silent = build_path(&policies, 0.0, true);
        if (ttl as usize) <= hops {
            let expired_silently = matches!(
                silent.transit(&datagram(ttl, EcnCodepoint::Ect0), &mut rng),
                TransitOutcome::Expired { .. }
            );
            prop_assert!(expired_silently);
        }
    }

    /// AQM decisions never invent an ECT mark out of not-ECT traffic and never
    /// turn marked traffic into not-ECT (they either forward, mark CE or drop).
    #[test]
    fn aqm_preserves_mark_semantics(
        ecn in arb_ecn(),
        probability in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for aqm in [AqmConfig::classic(probability), AqmConfig::l4s_default()] {
            match aqm.apply(ecn, &mut rng) {
                qem_netsim::aqm::AqmDecision::Forward(out) => {
                    if ecn == EcnCodepoint::NotEct {
                        prop_assert_eq!(out, EcnCodepoint::NotEct);
                    } else {
                        prop_assert!(out != EcnCodepoint::NotEct);
                    }
                }
                qem_netsim::aqm::AqmDecision::Drop => {
                    prop_assert_eq!(ecn, EcnCodepoint::NotEct);
                }
            }
        }
    }

    /// DSCP rewrites never touch the ECN bits.
    #[test]
    fn dscp_policies_do_not_affect_ecn(sent in arb_ecn(), dscp in 0u8..64) {
        let path = Path::new(vec![Hop::new(
            Router::transparent(1, Asn(1))
                .with_dscp_policy(DscpPolicy::Rewrite(qem_packet::ecn::Dscp::new(dscp))),
        )]);
        prop_assert_eq!(path.expected_arrival_ecn(sent), sent);
    }
}
