//! Fault plans must not cost determinism: a faulted engine run — loss,
//! burst loss, blackholes, flaps, corruption, jitter, reordering,
//! duplication, in any window layout — produces a byte-identical event log
//! and telemetry document on the binary-heap oracle and the production
//! timer wheel, run after run, including when wakes are cancelled inside a
//! blackhole window.
//!
//! Plans are grown from a proptest-sampled seed via a seeded RNG (the
//! vendored proptest stand-in samples primitives), so one failing case
//! prints one reproducible `(seed, plan_seed)` pair.

use proptest::prelude::*;
use qem_netsim::engine::{CrossTraffic, EngineCore, EventQueue, Scheduler};
use qem_netsim::{
    build_transit_path, Asn, EngineTelemetry, FaultKind, FaultPlan, FlowWake, SimDuration,
    SimInstant, TimerWheel, TransitProfile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_kind(rng: &mut StdRng) -> FaultKind {
    match rng.gen_range(0u32..8) {
        0 => FaultKind::Loss {
            rate: rng.gen_range(0.0..0.4),
        },
        1 => {
            let period = rng.gen_range(5_000u64..60_000);
            FaultKind::BurstLoss {
                period: SimDuration::from_micros(period),
                burst: SimDuration::from_micros(rng.gen_range(1..period)),
            }
        }
        2 => FaultKind::Blackhole,
        3 => {
            let period = rng.gen_range(5_000u64..60_000);
            FaultKind::Flap {
                period: SimDuration::from_micros(period),
                down: SimDuration::from_micros(rng.gen_range(1..period)),
            }
        }
        4 => FaultKind::Corrupt {
            rate: rng.gen_range(0.0..0.4),
        },
        5 => FaultKind::Jitter {
            max: SimDuration::from_micros(rng.gen_range(0u64..5_000)),
        },
        6 => FaultKind::Reorder {
            rate: rng.gen_range(0.0..0.4),
            extra: SimDuration::from_micros(rng.gen_range(0u64..5_000)),
        },
        _ => FaultKind::Duplicate {
            rate: rng.gen_range(0.0..0.4),
        },
    }
}

/// A random plan of 1–4 windows somewhere in the first simulated second.
fn arb_plan(plan_seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(plan_seed);
    let mut plan = FaultPlan::new();
    for _ in 0..rng.gen_range(1usize..=4) {
        let from = rng.gen_range(0u64..800_000);
        let len = rng.gen_range(1u64..400_000);
        plan = plan.window(
            SimInstant::EPOCH + SimDuration::from_micros(from),
            SimInstant::EPOCH + SimDuration::from_micros(from + len),
            arb_kind(&mut rng),
        );
    }
    plan
}

/// The congested shared-bottleneck scenario with `plan` attached to the
/// forward path, on scheduler `S`.
fn run_faulted<S: Scheduler<usize> + Default>(
    seed: u64,
    plan: &FaultPlan,
) -> (Vec<FlowWake>, EngineTelemetry) {
    let forward = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, false)
        .with_fault(plan.clone());
    let (queues, mut loads) = CrossTraffic::congested()
        .instantiate(&forward, seed)
        .expect("transit path has a bottleneck hop");
    let mut engine: EngineCore<'_, S> = EngineCore::new(queues);
    for load in loads.iter_mut() {
        engine.add_flow(load);
    }
    engine.run();
    (engine.event_log(), engine.telemetry())
}

proptest! {
    /// Same seed, same plan ⇒ byte-identical event logs and telemetry on
    /// the heap oracle and the timer wheel, and across repeated runs.
    #[test]
    fn faulted_runs_are_scheduler_and_rerun_deterministic(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let plan = arb_plan(plan_seed);
        let (heap_log, heap_tel) = run_faulted::<EventQueue<usize>>(seed, &plan);
        let (wheel_log, wheel_tel) = run_faulted::<TimerWheel<usize>>(seed, &plan);
        prop_assert_eq!(&heap_log, &wheel_log);
        prop_assert_eq!(&heap_tel, &wheel_tel);
        let (again_log, again_tel) = run_faulted::<TimerWheel<usize>>(seed, &plan);
        prop_assert_eq!(&wheel_log, &again_log);
        prop_assert_eq!(&wheel_tel, &again_tel);
    }
}

/// Cancellation inside a blackhole window: the cancelled wake never fires,
/// the blackhole still swallows packets, and both schedulers agree on the
/// whole observable outcome.
#[test]
fn cancellation_during_a_blackhole_window_stays_deterministic() {
    let plan = FaultPlan::new().window(
        SimInstant::EPOCH,
        SimInstant::EPOCH + SimDuration::from_secs(1),
        FaultKind::Blackhole,
    );

    fn run<S: Scheduler<usize> + Default>(plan: &FaultPlan) -> (Vec<FlowWake>, EngineTelemetry) {
        let forward = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, false)
            .with_fault(plan.clone());
        let (queues, mut loads) = CrossTraffic::congested()
            .instantiate(&forward, 1299)
            .expect("transit path has a bottleneck hop");
        let mut engine: EngineCore<'_, S> = EngineCore::new(queues);
        let mut first_index = None;
        for load in loads.iter_mut() {
            let index = engine.add_flow(load);
            first_index.get_or_insert(index);
        }
        // An extra wake in the middle of the blackhole, cancelled before
        // it can fire: the cancellation accounting must not disturb the
        // faulted run's determinism.
        let id = engine.schedule_wake_at(
            SimInstant::EPOCH + SimDuration::from_millis(500),
            first_index.expect("at least one load flow"),
        );
        assert!(engine.cancel_wake(id));
        engine.run();
        (engine.event_log(), engine.telemetry())
    }

    let (heap_log, heap_tel) = run::<EventQueue<usize>>(&plan);
    let (wheel_log, wheel_tel) = run::<TimerWheel<usize>>(&plan);
    assert_eq!(heap_log, wheel_log);
    assert_eq!(heap_tel, wheel_tel);
    assert!(
        heap_tel
            .metrics
            .counter("fault.drops.blackhole")
            .unwrap_or(0)
            > 0,
        "the blackhole window must actually swallow packets"
    );
    assert_eq!(heap_tel.metrics.counter("engine.sched.cancelled"), Some(1));
}
