//! Differential tests: the timer wheel against the binary-heap oracle.
//!
//! The engine's [`Scheduler`] boundary has two implementations —
//! [`EventQueue`] (binary heap, the reference oracle) and [`TimerWheel`]
//! (the production scheduler).  Their contract is bit-identical observable
//! behaviour: the same `(fire time, payload)` sequence, the same FIFO
//! tie-breaking, the same batch boundaries, the same cancellation
//! accounting.  These tests drive both through identical workloads — a
//! full shared-bottleneck engine run, explicit cancellation, and
//! proptest-generated random schedule/cancel/pop interleavings — and
//! assert exact agreement.

use proptest::prelude::*;
use qem_netsim::engine::{
    CrossTraffic, EngineCore, EventQueue, Flow, FlowStatus, FlowWake, Scheduler, SharedQueues,
};
use qem_netsim::{
    build_transit_path, Asn, EngineTelemetry, SimDuration, SimInstant, TimerWheel, TransitProfile,
};

/// Run the congested shared-bottleneck scenario — 32 background load flows
/// racing through one queue — on the given scheduler, returning the wake
/// log and the telemetry document.
fn run_congested<S: Scheduler<usize> + Default>(seed: u64) -> (Vec<FlowWake>, EngineTelemetry) {
    let forward = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, false);
    let (queues, mut loads) = CrossTraffic::congested()
        .instantiate(&forward, seed)
        .expect("transit path has a bottleneck hop");
    let mut engine: EngineCore<'_, S> = EngineCore::new(queues);
    for load in loads.iter_mut() {
        engine.add_flow(load);
    }
    engine.run();
    let log = engine.event_log();
    let telemetry = engine.telemetry();
    (log, telemetry)
}

/// The tentpole's acceptance test: a multi-flow engine run produces a
/// bit-identical event log — and therefore bit-identical telemetry — on
/// the heap oracle and the timer wheel.
#[test]
fn wheel_and_heap_agree_on_multi_flow_event_order() {
    for seed in [1u64, 7, 42, 1299] {
        let (heap_log, heap_tel) = run_congested::<EventQueue<usize>>(seed);
        let (wheel_log, wheel_tel) = run_congested::<TimerWheel<usize>>(seed);
        assert!(!heap_log.is_empty(), "scenario must produce wakes");
        assert_eq!(heap_log, wheel_log, "event order diverged (seed {seed})");
        assert_eq!(heap_tel, wheel_tel, "telemetry diverged (seed {seed})");
    }
}

/// A flow that re-arms a fixed number of times at a fixed period.
struct PeriodicFlow {
    period: SimDuration,
    remaining: u32,
}

impl Flow for PeriodicFlow {
    fn on_wake(&mut self, now: SimInstant, _net: &mut SharedQueues) -> FlowStatus {
        if self.remaining == 0 {
            FlowStatus::Done
        } else {
            self.remaining -= 1;
            FlowStatus::Sleep(now + self.period)
        }
    }
}

/// Cancelled wakes really are cancelled (the flow never fires), and the
/// engine accounts for them: `cancelled` counts the cancel call, `stale`
/// counts the skipped wheel/heap entry, and both surface in the telemetry
/// document — but only when nonzero, so cancel-free runs keep byte-stable
/// golden telemetry.
#[test]
fn cancelled_wakes_are_skipped_and_counted() {
    fn run<S: Scheduler<usize> + Default>() -> (Vec<FlowWake>, EngineTelemetry) {
        let mut ticker = PeriodicFlow {
            period: SimDuration::from_millis(1),
            remaining: 3,
        };
        let mut engine: EngineCore<'_, S> = EngineCore::new(SharedQueues::new());
        let index = engine.add_flow(&mut ticker);
        // An extra wake far in the future, cancelled before it fires: the
        // run must end at the ticker's natural end, not at +10 s.
        let id = engine.schedule_wake_at(SimInstant::EPOCH + SimDuration::from_secs(10), index);
        assert!(engine.cancel_wake(id));
        // Cancelling again is a no-op: the id is already dead.
        assert!(!engine.cancel_wake(id));
        engine.run();
        let stats = engine.scheduler_stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.stale, 1);
        (engine.event_log(), engine.telemetry())
    }

    let (heap_log, heap_tel) = run::<EventQueue<usize>>();
    let (wheel_log, wheel_tel) = run::<TimerWheel<usize>>();
    assert_eq!(heap_log, wheel_log);
    assert_eq!(heap_tel, wheel_tel);

    // 4 wakes fired (the initial one plus 3 re-arms); the cancelled fifth
    // never did, and the telemetry document says so.
    assert_eq!(heap_log.len(), 4);
    assert_eq!(heap_tel.metrics.counter("engine.sched.cancelled"), Some(1));
    assert_eq!(heap_tel.metrics.counter("engine.sched.stale_pops"), Some(1));

    // A cancel-free run emits neither counter: the golden telemetry
    // documents pinned before the scheduler swap stay byte-identical.
    let (_, clean_tel) = run_congested::<TimerWheel<usize>>(1);
    assert_eq!(clean_tel.metrics.counter("engine.sched.cancelled"), None);
    assert_eq!(clean_tel.metrics.counter("engine.sched.stale_pops"), None);
}

/// One step of the random scheduler workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a payload `delay_us` after the latest schedule so far.
    /// Schedule times are monotone — the engine's usage pattern: flows
    /// re-arm relative to their wake instant, never behind it.
    Schedule { delay_us: u64, payload: u32 },
    /// Cancel the `i`-th id handed out so far (mod the count), if any.
    Cancel { i: usize },
    /// Pop the next live event.
    Pop,
    /// Drain the next same-instant batch.
    PopBatch,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Delays span wheel levels: 0 forces same-tick collisions, large
        // values force far-future entries that must cascade down.
        (0u64..3_000_000, any::<u32>())
            .prop_map(|(delay_us, payload)| Op::Schedule { delay_us, payload }),
        (0usize..64).prop_map(|i| Op::Cancel { i }),
        Just(Op::Pop),
        Just(Op::PopBatch),
    ]
}

/// Everything one scheduler interaction lets the caller observe.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Cancelled(bool),
    Popped(Option<(u64, u32)>, usize),
    Batch(Vec<(u64, u32)>, usize),
}

/// Apply the same operation sequence and record every observable: pop
/// results, batch boundaries, cancel return values, pending lengths.
fn observe<S: Scheduler<u32>>(sched: &mut S, ops: &[Op]) -> Vec<Observed> {
    let mut ids = Vec::new();
    let mut horizon = 0u64;
    let mut seen = Vec::new();
    let mut batch = Vec::new();
    for op in ops {
        match op {
            Op::Schedule { delay_us, payload } => {
                horizon += delay_us;
                let at = SimInstant::EPOCH + SimDuration::from_micros(horizon);
                ids.push(Some(sched.schedule_at(at, *payload)));
            }
            Op::Cancel { i } => {
                if !ids.is_empty() {
                    let slot = *i % ids.len();
                    if let Some(id) = ids[slot].take() {
                        // Whether the cancel lands (the event may already
                        // have fired) must agree between implementations.
                        seen.push(Observed::Cancelled(sched.cancel(id)));
                    }
                }
            }
            Op::Pop => {
                let popped = sched.pop().map(|e| (e.at.as_micros(), e.payload));
                seen.push(Observed::Popped(popped, sched.len()));
            }
            Op::PopBatch => {
                sched.pop_batch(&mut batch);
                let items = batch
                    .iter()
                    .map(|e| (e.at.as_micros(), e.payload))
                    .collect();
                seen.push(Observed::Batch(items, sched.len()));
            }
        }
    }
    // Full drain: whatever is left must come out in the same order, and
    // skipping the cancelled entries must leave identical stale totals.
    while let Some(e) = sched.pop() {
        seen.push(Observed::Popped(
            Some((e.at.as_micros(), e.payload)),
            sched.len(),
        ));
    }
    seen
}

proptest! {
    /// Any interleaving of schedules, cancels and pops observed through the
    /// heap oracle and the timer wheel is indistinguishable: same events at
    /// the same times in the same batches, same cancel outcomes, same
    /// lengths, same final counters.
    #[test]
    fn random_workloads_are_indistinguishable(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut heap = EventQueue::<u32>::new();
        let mut wheel = TimerWheel::<u32>::new();
        let heap_seen = observe(&mut heap, &ops);
        let wheel_seen = observe(&mut wheel, &ops);
        prop_assert_eq!(heap_seen, wheel_seen);
        prop_assert_eq!(
            Scheduler::<u32>::stats(&heap),
            Scheduler::<u32>::stats(&wheel)
        );
    }
}
