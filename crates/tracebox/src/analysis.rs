//! Impairment detection and AS attribution on top of a [`PathTrace`].
//!
//! The quotes only show the packet *as received* at each responding hop, so a
//! change that becomes visible at hop `k` was applied by some router between
//! the previous responding hop and `k`.  The paper handles this ambiguity by
//! reporting the AS seen *before* the change and the AS at which the change
//! is first *visible* (§7.3: "residing in either AS 1299 (before) or AS 174
//! (Cogent, after visible change)"); this module exposes both.

use crate::tracer::PathTrace;
use qem_netsim::Asn;
use qem_packet::ecn::EcnCodepoint;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// A single observed change of the probe's ECN codepoint along the path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcnChange {
    /// The codepoint before the change.
    pub from: EcnCodepoint,
    /// The codepoint after the change.
    pub to: EcnCodepoint,
    /// TTL at which the new codepoint became visible.
    pub visible_at_ttl: u8,
    /// Router that quoted the *old* value last (the "before" side).
    pub last_unchanged_router: Option<IpAddr>,
    /// AS of that router, if resolvable.
    pub asn_before: Option<Asn>,
    /// Router whose quote first showed the new value.
    pub first_changed_router: Option<IpAddr>,
    /// AS of that router, if resolvable.
    pub asn_at_change: Option<Asn>,
}

impl EcnChange {
    /// The AS the measurement pipeline attributes the change to: the AS
    /// before the visible change if known, otherwise the AS at the change.
    pub fn attributed_asn(&self) -> Option<Asn> {
        self.asn_before.or(self.asn_at_change)
    }
}

/// End-to-end verdict about what the path did to the probe codepoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathVerdict {
    /// The codepoint visible at the last observed hop equals the sent one and
    /// no intermediate change was seen.
    NoChange,
    /// The codepoint ended up as not-ECT (cleared / bleached).
    Cleared,
    /// The codepoint ended up as ECT(1) although ECT(0) was sent.
    RemarkedToEct1,
    /// The codepoint ended up as ECT(0) although something else was sent.
    RemarkedToEct0,
    /// The codepoint ended up as CE.
    CeMarked,
    /// No hop produced a usable quotation, so nothing can be said.
    Untested,
}

/// The result of analysing one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Every codepoint change observed along the path, in order.
    pub changes: Vec<EcnChange>,
    /// The end-to-end verdict.
    pub verdict: PathVerdict,
    /// The codepoint observed at the last responding hop, if any.
    pub final_observed: Option<EcnCodepoint>,
    /// Whether any hop rewrote only the DSCP while leaving ECN intact
    /// (benign bleaching the tracer must not flag as an ECN impairment).
    pub dscp_rewritten_only: bool,
}

impl TraceAnalysis {
    /// Whether the path visibly impairs ECN.
    pub fn is_impaired(&self) -> bool {
        !matches!(self.verdict, PathVerdict::NoChange | PathVerdict::Untested)
    }

    /// ASes involved in any change, deduplicated, in order of appearance.
    pub fn involved_asns(&self) -> Vec<Asn> {
        let mut out = Vec::new();
        for change in &self.changes {
            for asn in [change.asn_before, change.asn_at_change]
                .into_iter()
                .flatten()
            {
                if !out.contains(&asn) {
                    out.push(asn);
                }
            }
        }
        out
    }
}

/// Analyse a trace, resolving router addresses to ASes with `ip_to_asn`
/// (typically backed by the synthetic as2org data in `qem-web`).
pub fn analyze_trace(
    trace: &PathTrace,
    ip_to_asn: &dyn Fn(IpAddr) -> Option<Asn>,
) -> TraceAnalysis {
    let observed: Vec<_> = trace
        .hops
        .iter()
        .filter(|h| h.observed_ecn.is_some())
        .collect();

    if observed.is_empty() {
        return TraceAnalysis {
            changes: Vec::new(),
            verdict: PathVerdict::Untested,
            final_observed: None,
            dscp_rewritten_only: false,
        };
    }

    let mut changes = Vec::new();
    let mut previous_ecn = trace.sent_codepoint;
    let mut previous_router: Option<IpAddr> = None;
    let mut dscp_changed = false;
    for hop in &observed {
        let ecn = hop.observed_ecn.expect("filtered to observed");
        if let Some(dscp) = hop.observed_dscp {
            if dscp != trace.sent_dscp {
                dscp_changed = true;
            }
        }
        if ecn != previous_ecn {
            changes.push(EcnChange {
                from: previous_ecn,
                to: ecn,
                visible_at_ttl: hop.ttl,
                last_unchanged_router: previous_router,
                asn_before: previous_router.and_then(ip_to_asn),
                first_changed_router: hop.router,
                asn_at_change: hop.router.and_then(ip_to_asn),
            });
            previous_ecn = ecn;
        }
        previous_router = hop.router;
    }

    let final_observed = observed.last().and_then(|h| h.observed_ecn);
    let verdict = match final_observed {
        None => PathVerdict::Untested,
        Some(ecn) if ecn == trace.sent_codepoint && changes.is_empty() => PathVerdict::NoChange,
        Some(EcnCodepoint::NotEct) => PathVerdict::Cleared,
        Some(EcnCodepoint::Ect1) if trace.sent_codepoint != EcnCodepoint::Ect1 => {
            PathVerdict::RemarkedToEct1
        }
        Some(EcnCodepoint::Ect0) if trace.sent_codepoint != EcnCodepoint::Ect0 => {
            PathVerdict::RemarkedToEct0
        }
        Some(EcnCodepoint::Ce) if trace.sent_codepoint != EcnCodepoint::Ce => PathVerdict::CeMarked,
        // Same as sent at the end: end-to-end the path is unchanged, even if
        // something flapped in between (the flaps stay visible in `changes`).
        Some(_) => PathVerdict::NoChange,
    };

    let dscp_rewritten_only = dscp_changed && changes.is_empty();
    TraceAnalysis {
        changes,
        verdict,
        final_observed,
        dscp_rewritten_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{trace_path, TraceConfig};
    use qem_netsim::{build_transit_path, Asn, DscpPolicy, PathBuilder, Router, TransitProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn endpoints() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 99)),
        )
    }

    /// Resolve the deterministic router addresses back to ASes by matching
    /// the second octet (see `Router::derive_v4_address`).
    fn resolver(candidates: &'static [Asn]) -> impl Fn(IpAddr) -> Option<Asn> {
        move |addr| match addr {
            IpAddr::V4(v4) => candidates
                .iter()
                .copied()
                .find(|asn| (asn.0 % 200) as u8 == v4.octets()[1]),
            IpAddr::V6(_) => None,
        }
    }

    fn trace(profile: TransitProfile) -> PathTrace {
        let path = build_transit_path(Asn::DFN, Asn(13335), profile, false);
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(11);
        trace_path(&path, src, dst, &TraceConfig::default(), &mut rng)
    }

    const ASNS: &[Asn] = &[Asn::DFN, Asn::ARELION, Asn::COGENT, Asn::LEVEL3, Asn(13335)];

    #[test]
    fn clean_path_is_unimpaired() {
        let analysis = analyze_trace(&trace(TransitProfile::Clean), &resolver(ASNS));
        assert_eq!(analysis.verdict, PathVerdict::NoChange);
        assert!(!analysis.is_impaired());
        assert!(analysis.changes.is_empty());
    }

    #[test]
    fn clearing_is_detected_and_attributed() {
        let analysis = analyze_trace(
            &trace(TransitProfile::Clearing { asn: Asn::ARELION }),
            &resolver(ASNS),
        );
        assert_eq!(analysis.verdict, PathVerdict::Cleared);
        assert!(analysis.is_impaired());
        assert_eq!(analysis.changes.len(), 1);
        let change = analysis.changes[0];
        assert_eq!(change.from, EcnCodepoint::Ect0);
        assert_eq!(change.to, EcnCodepoint::NotEct);
        // The clearing router sits inside AS 1299; both attribution candidates
        // must include it.
        assert_eq!(change.attributed_asn(), Some(Asn::ARELION));
        assert!(analysis.involved_asns().contains(&Asn::ARELION));
    }

    #[test]
    fn remarking_is_detected() {
        let analysis = analyze_trace(
            &trace(TransitProfile::Remarking { asn: Asn::ARELION }),
            &resolver(ASNS),
        );
        assert_eq!(analysis.verdict, PathVerdict::RemarkedToEct1);
        assert_eq!(analysis.changes.len(), 1);
        assert_eq!(analysis.changes[0].to, EcnCodepoint::Ect1);
    }

    #[test]
    fn double_rewrite_shows_two_changes() {
        let analysis = analyze_trace(
            &trace(TransitProfile::RemarkThenClear {
                first: Asn::ARELION,
                second: Asn::COGENT,
            }),
            &resolver(ASNS),
        );
        assert_eq!(analysis.verdict, PathVerdict::Cleared);
        assert_eq!(analysis.changes.len(), 2);
        assert_eq!(analysis.changes[0].to, EcnCodepoint::Ect1);
        assert_eq!(analysis.changes[1].to, EcnCodepoint::NotEct);
        let involved = analysis.involved_asns();
        assert!(involved.contains(&Asn::ARELION));
        assert!(involved.contains(&Asn::COGENT));
    }

    #[test]
    fn ce_marking_is_detected() {
        let analysis = analyze_trace(
            &trace(TransitProfile::MarkAllCe { asn: Asn::ARELION }),
            &resolver(ASNS),
        );
        assert_eq!(analysis.verdict, PathVerdict::CeMarked);
    }

    #[test]
    fn dscp_only_rewrite_is_not_an_impairment() {
        let path = PathBuilder::new()
            .transparent_hops(Asn::DFN, 1)
            .custom_hop(
                Router::transparent(5, Asn::ARELION)
                    .with_dscp_policy(DscpPolicy::ResetToBestEffort),
            )
            .transparent_hops(Asn(13335), 2)
            .build();
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(3);
        let config = TraceConfig {
            probe_dscp: qem_packet::ecn::Dscp::new(12),
            ..TraceConfig::default()
        };
        let trace = trace_path(&path, src, dst, &config, &mut rng);
        let analysis = analyze_trace(&trace, &resolver(ASNS));
        assert_eq!(analysis.verdict, PathVerdict::NoChange);
        assert!(analysis.dscp_rewritten_only);
        assert!(!analysis.is_impaired());
    }

    #[test]
    fn all_silent_path_is_untested() {
        use qem_netsim::{Hop, IcmpBehavior, Path};
        let path = Path::new(vec![
            Hop::new(Router::transparent(1, Asn::DFN).with_icmp(IcmpBehavior::silent())),
            Hop::new(Router::transparent(2, Asn::ARELION).with_icmp(IcmpBehavior::silent())),
        ]);
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(4);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        let analysis = analyze_trace(&trace, &resolver(ASNS));
        assert_eq!(analysis.verdict, PathVerdict::Untested);
        assert!(!analysis.is_impaired());
        assert_eq!(analysis.final_observed, None);
    }
}
