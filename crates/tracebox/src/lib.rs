//! A tracebox-style network path tracer (paper §4.2).
//!
//! When the transport-layer analysis shows abnormal behaviour for a host —
//! missing ECN mirroring, or codepoints coming back different from what was
//! sent — the study probes the forward path: QUIC Initial packets carrying
//! `ECT(0)` are sent with increasing TTLs, and the ICMP *time exceeded*
//! responses, which quote the expired packet, reveal which ECN / DSCP value
//! the packet carried when it reached each hop.  Comparing consecutive quotes
//! localises clearing and re-marking and lets the pipeline attribute the
//! impairment to an AS (Tables 4 and 7).
//!
//! Operational details reproduced from the paper:
//!
//! * 3 s timeout per hop,
//! * the trace stops after 5 consecutive silent hops (ICMP rate limiting or
//!   blackholing),
//! * probes are QUIC Initials so that middleboxes treat them like the real
//!   measurement traffic,
//! * the trace runs until the destination is reached or the TTL budget is
//!   exhausted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod tracer;

pub use analysis::{analyze_trace, EcnChange, PathVerdict, TraceAnalysis};
pub use tracer::{trace_path, HopObservation, PathTrace, TraceConfig};
