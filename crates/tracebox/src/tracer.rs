//! The TTL-sweep probe engine.

use qem_netsim::{Path, SimDuration, TransitOutcome};
use qem_packet::ecn::{Dscp, EcnCodepoint};
use qem_packet::icmp::IcmpMessage;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use qem_packet::quic::{
    ConnectionId, Frame, LongPacketType, PacketHeader, QuicPacket, QuicVersion, MIN_INITIAL_SIZE,
    QUIC_PORT,
};
use qem_packet::udp::UdpHeader;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Configuration of a path trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Largest TTL probed.
    pub max_ttl: u8,
    /// Per-hop timeout (the paper uses 3 s).
    pub per_hop_timeout: SimDuration,
    /// Number of consecutive unanswered hops tolerated before the trace stops
    /// (the paper uses 5).
    pub max_consecutive_timeouts: u32,
    /// ECN codepoint carried by the probes.
    pub probe_codepoint: EcnCodepoint,
    /// DSCP carried by the probes.
    pub probe_dscp: Dscp,
    /// QUIC version advertised by the probe Initials.
    pub probe_version: QuicVersion,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_ttl: 32,
            per_hop_timeout: SimDuration::from_secs(3),
            max_consecutive_timeouts: 5,
            probe_codepoint: EcnCodepoint::Ect0,
            probe_dscp: Dscp::BEST_EFFORT,
            probe_version: QuicVersion::V1,
        }
    }
}

/// What the tracer learnt about one hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopObservation {
    /// TTL of the probe that produced this observation.
    pub ttl: u8,
    /// Address of the router that answered, if any.
    pub router: Option<IpAddr>,
    /// ECN codepoint the probe carried when it reached this hop, if the
    /// quotation was long enough to recover it.
    pub observed_ecn: Option<EcnCodepoint>,
    /// DSCP the probe carried when it reached this hop.
    pub observed_dscp: Option<Dscp>,
    /// Whether this hop stayed silent (timeout).
    pub timed_out: bool,
}

/// A complete trace towards one destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathTrace {
    /// The destination that was probed.
    pub destination: IpAddr,
    /// The codepoint the probes were sent with.
    pub sent_codepoint: EcnCodepoint,
    /// The DSCP the probes were sent with.
    pub sent_dscp: Dscp,
    /// Per-hop observations in TTL order.
    pub hops: Vec<HopObservation>,
    /// Whether a probe eventually reached the destination.
    pub destination_reached: bool,
    /// Total number of probes sent.
    pub probes_sent: u32,
    /// Simulated time spent waiting on timeouts.
    pub time_spent: SimDuration,
}

impl PathTrace {
    /// Observations for which the ECN codepoint could be recovered.
    pub fn observed_hops(&self) -> impl Iterator<Item = &HopObservation> {
        self.hops.iter().filter(|h| h.observed_ecn.is_some())
    }

    /// Number of hops that answered.
    pub fn responding_hops(&self) -> usize {
        self.hops.iter().filter(|h| !h.timed_out).count()
    }
}

/// Build one probe: a padded QUIC Initial inside UDP inside IP with the given
/// TTL and traffic class.
fn build_probe(
    source: IpAddr,
    destination: IpAddr,
    ttl: u8,
    config: &TraceConfig,
    seq: u32,
) -> IpDatagram {
    let mut payload = Frame::encode_all(&[Frame::Ping]);
    // Pad so that the whole IP datagram clears the 1200-byte Initial minimum
    // (QUIC long header + UDP + IP headers add roughly 50–70 bytes).
    Frame::Padding {
        size: MIN_INITIAL_SIZE - 40,
    }
    .encode(&mut payload);
    let packet = QuicPacket::new(
        PacketHeader::Long {
            ty: LongPacketType::Initial,
            version: config.probe_version,
            dcid: ConnectionId::from_u64(0x7261_6365_0000_0000 | u64::from(seq)),
            scid: ConnectionId::from_u64(0x7372_6300_0000_0000 | u64::from(seq)),
            token: Vec::new(),
            packet_number: 0,
        },
        payload,
    );
    let udp = UdpHeader::new(44_000 + (seq as u16 % 1000), QUIC_PORT).encode(
        source,
        destination,
        &packet.encode(),
    );
    let header = match (source, destination) {
        (IpAddr::V4(s), IpAddr::V4(d)) => IpHeader::V4(
            Ipv4Header::new(s, d, IpProtocol::Udp, ttl)
                .with_ecn(config.probe_codepoint)
                .with_dscp(config.probe_dscp),
        ),
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            let mut h =
                Ipv6Header::new(s, d, IpProtocol::Udp, ttl).with_ecn(config.probe_codepoint);
            h.dscp = config.probe_dscp;
            IpHeader::V6(h)
        }
        _ => IpHeader::V4(
            Ipv4Header::new(
                std::net::Ipv4Addr::UNSPECIFIED,
                std::net::Ipv4Addr::UNSPECIFIED,
                IpProtocol::Udp,
                ttl,
            )
            .with_ecn(config.probe_codepoint),
        ),
    };
    IpDatagram::new(header, udp)
}

/// Extract the quoted traffic class from an ICMP time-exceeded response.
fn parse_quote(response: &IpDatagram) -> Option<(EcnCodepoint, Dscp)> {
    let v6 = response.header.is_v6();
    let icmp = IcmpMessage::decode(&response.payload, v6).ok()?;
    if !icmp.is_time_exceeded() {
        return None;
    }
    // The quote starts with the original IP header; a partial quote may still
    // contain the full fixed header (20 / 40 bytes), otherwise give up.
    let (header, _) = IpHeader::decode(icmp.quote()).ok()?;
    Some((header.ecn(), header.dscp()))
}

/// Run a trace over `path` towards `destination`.
pub fn trace_path<R: Rng + ?Sized>(
    path: &Path,
    source: IpAddr,
    destination: IpAddr,
    config: &TraceConfig,
    rng: &mut R,
) -> PathTrace {
    let mut trace = PathTrace {
        destination,
        sent_codepoint: config.probe_codepoint,
        sent_dscp: config.probe_dscp,
        hops: Vec::new(),
        destination_reached: false,
        probes_sent: 0,
        time_spent: SimDuration::ZERO,
    };
    let mut consecutive_timeouts = 0u32;
    for ttl in 1..=config.max_ttl {
        let probe = build_probe(source, destination, ttl, config, u32::from(ttl));
        trace.probes_sent += 1;
        match path.transit(&probe, rng) {
            TransitOutcome::TimeExceeded {
                response, delay, ..
            } => {
                consecutive_timeouts = 0;
                trace.time_spent += delay;
                let observed = parse_quote(&response);
                trace.hops.push(HopObservation {
                    ttl,
                    router: Some(response.header.src()),
                    observed_ecn: observed.map(|(e, _)| e),
                    observed_dscp: observed.map(|(_, d)| d),
                    timed_out: false,
                });
            }
            TransitOutcome::Delivered { .. } => {
                trace.destination_reached = true;
                break;
            }
            TransitOutcome::Expired { .. } | TransitOutcome::Dropped { .. } => {
                consecutive_timeouts += 1;
                trace.time_spent += config.per_hop_timeout;
                trace.hops.push(HopObservation {
                    ttl,
                    router: None,
                    observed_ecn: None,
                    observed_dscp: None,
                    timed_out: true,
                });
                if consecutive_timeouts >= config.max_consecutive_timeouts {
                    break;
                }
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_netsim::{
        build_transit_path, Asn, EcnPolicy, Hop, IcmpBehavior, PathBuilder, Router, TransitProfile,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn endpoints() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 99)),
        )
    }

    #[test]
    fn clean_path_shows_sent_codepoint_at_every_hop() {
        let path = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, false);
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        assert!(trace.destination_reached);
        assert_eq!(trace.responding_hops(), path.len());
        assert!(trace
            .observed_hops()
            .all(|h| h.observed_ecn == Some(EcnCodepoint::Ect0)));
    }

    #[test]
    fn clearing_path_shows_transition_to_not_ect() {
        let path = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(2);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        let observed: Vec<_> = trace
            .observed_hops()
            .map(|h| h.observed_ecn.unwrap())
            .collect();
        assert!(observed.contains(&EcnCodepoint::Ect0));
        assert!(observed.contains(&EcnCodepoint::NotEct));
        // Once cleared it never comes back.
        let first_clear = observed
            .iter()
            .position(|e| *e == EcnCodepoint::NotEct)
            .unwrap();
        assert!(observed[first_clear..]
            .iter()
            .all(|e| *e == EcnCodepoint::NotEct));
    }

    #[test]
    fn silent_hops_are_tolerated_up_to_the_limit() {
        let path = PathBuilder::new()
            .transparent_hops(Asn::DFN, 1)
            .custom_hop(Router::transparent(10, Asn::ARELION).with_icmp(IcmpBehavior::silent()))
            .custom_hop(Router::transparent(11, Asn::ARELION).with_icmp(IcmpBehavior::silent()))
            .transparent_hops(Asn(13335), 1)
            .build();
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        assert!(trace.destination_reached);
        assert_eq!(trace.hops.iter().filter(|h| h.timed_out).count(), 2);
    }

    #[test]
    fn too_many_silent_hops_abort_the_trace() {
        let mut builder = PathBuilder::new().transparent_hops(Asn::DFN, 1);
        for i in 0..8 {
            builder = builder.custom_hop(
                Router::transparent(20 + i, Asn::ARELION).with_icmp(IcmpBehavior::silent()),
            );
        }
        let path = builder.transparent_hops(Asn(13335), 1).build();
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(4);
        let config = TraceConfig::default();
        let trace = trace_path(&path, src, dst, &config, &mut rng);
        assert!(!trace.destination_reached);
        let trailing_timeouts = trace.hops.iter().rev().take_while(|h| h.timed_out).count() as u32;
        assert_eq!(trailing_timeouts, config.max_consecutive_timeouts);
        assert!(trace.time_spent >= config.per_hop_timeout * 5);
    }

    #[test]
    fn minimal_quotes_still_reveal_the_traffic_class() {
        let path = PathBuilder::new()
            .custom_hop(
                Router::transparent(1, Asn::DFN)
                    .with_icmp(IcmpBehavior::minimal_quote())
                    .with_ecn_policy(EcnPolicy::Pass),
            )
            .transparent_hops(Asn(13335), 1)
            .build();
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        assert_eq!(trace.hops[0].observed_ecn, Some(EcnCodepoint::Ect0));
    }

    #[test]
    fn probe_is_a_padded_quic_initial() {
        let (src, dst) = endpoints();
        let probe = build_probe(src, dst, 3, &TraceConfig::default(), 3);
        assert!(probe.wire_len() >= MIN_INITIAL_SIZE);
        assert_eq!(probe.header.ttl(), 3);
        assert_eq!(probe.header.ecn(), EcnCodepoint::Ect0);
        let (_, udp_payload) = UdpHeader::decode(&probe.payload).unwrap();
        let (packet, _) = QuicPacket::decode(udp_payload, 8).unwrap();
        assert!(packet.header.is_initial());
    }

    #[test]
    fn lossy_first_hop_counts_as_timeout() {
        let path = qem_netsim::Path::new(vec![
            Hop::new(Router::transparent(1, Asn::DFN)).with_loss(1.0)
        ]);
        let (src, dst) = endpoints();
        let mut rng = StdRng::seed_from_u64(6);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        assert!(!trace.destination_reached);
        assert!(trace.hops.iter().all(|h| h.timed_out));
    }

    #[test]
    fn ipv6_trace_works() {
        let path = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Remarking { asn: Asn::ARELION },
            true,
        );
        let src: IpAddr = "2001:db8::10".parse().unwrap();
        let dst: IpAddr = "2001:db8:5::1".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        assert!(trace.destination_reached);
        assert!(trace
            .observed_hops()
            .any(|h| h.observed_ecn == Some(EcnCodepoint::Ect1)));
        assert!(trace
            .hops
            .iter()
            .all(|h| h.router.map_or(true, |r| r.is_ipv6())));
    }
}
