//! Scanner resilience: a typed probe-error taxonomy and a bounded retry
//! policy with deterministic exponential backoff plus seeded jitter.
//!
//! The vocabulary follows draft-ietf-quic-recovery's PTO machinery: each
//! failed attempt doubles the backoff (capped), and a jitter fraction drawn
//! from the per-host RNG desynchronises retry storms without giving up
//! reproducibility — the whole schedule is a pure function of
//! `(seed, host id)`.  The default policy is a single attempt with no
//! backoff, which keeps every existing scan bit-identical.

use qem_netsim::SimDuration;
use qem_quic::ConnectionOutcome;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a QUIC probe (or its final retry) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeError {
    /// Packets still flowed but the connection never completed inside the
    /// virtual probe budget.
    Timeout,
    /// Nothing ever came back from the server — the path ate every packet.
    Blackhole,
    /// The transport came up but the application reply was unusable
    /// (undecodable or missing).
    CorruptReply,
    /// Every attempt the [`RetryPolicy`] allowed has failed.
    Exhausted {
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl ProbeError {
    /// Stable metric-name slug (`scan.probe_error.<slug>`).
    pub fn slug(&self) -> &'static str {
        match self {
            ProbeError::Timeout => "timeout",
            ProbeError::Blackhole => "blackhole",
            ProbeError::CorruptReply => "corrupt_reply",
            ProbeError::Exhausted { .. } => "exhausted",
        }
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Timeout => write!(f, "probe timed out"),
            ProbeError::Blackhole => write!(f, "path blackholed every reply"),
            ProbeError::CorruptReply => write!(f, "reply was corrupt or missing"),
            ProbeError::Exhausted { attempts } => {
                write!(f, "all {attempts} probe attempts failed")
            }
        }
    }
}

/// Classify one QUIC connection attempt.
///
/// `Ok` means the probe measured what it came for: the handshake completed
/// and an application response arrived.  Failures split on what the client
/// saw: nothing at all ⇒ [`ProbeError::Blackhole`]; a live transport with
/// no usable reply ⇒ [`ProbeError::CorruptReply`] (corrupted datagrams are
/// dropped at decode, so corruption surfaces as missing application data);
/// anything else ⇒ [`ProbeError::Timeout`].  Classification is a pure
/// read — it consumes no RNG draws.
pub fn classify_probe(outcome: &ConnectionOutcome) -> Result<(), ProbeError> {
    let report = &outcome.report;
    if report.connected && report.response.is_some() {
        return Ok(());
    }
    if report.connected {
        return Err(ProbeError::CorruptReply);
    }
    if report.received_ecn.total() == 0 {
        return Err(ProbeError::Blackhole);
    }
    Err(ProbeError::Timeout)
}

/// Bounded retries with deterministic exponential backoff + seeded jitter.
///
/// `Copy` on purpose: the policy rides inside
/// [`ScanOptions`](crate::scanner::ScanOptions) without breaking the
/// struct-update idiom the whole test suite uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per probe (minimum 1; 1 means no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: SimDuration,
    /// Cap on the doubled backoff.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff gains a uniform extra in
    /// `[0, jitter × backoff)`, drawn from the per-host RNG.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Single attempt, no backoff — the default, and byte-identical to the
    /// pre-resilience scanner.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// The chaos-campaign default: three attempts, 200 ms initial backoff
    /// doubling up to 3 s, half-backoff jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: SimDuration::from_millis(200),
            max_backoff: SimDuration::from_secs(3),
            jitter: 0.5,
        }
    }

    /// Whether the policy changes nothing (single attempt).
    pub fn is_noop(&self) -> bool {
        self.attempts <= 1
    }

    /// Backoff to wait before attempt number `next_attempt` (2-based: the
    /// first retry is attempt 2).  Deterministic given the RNG state.
    pub fn backoff_before<R: Rng + ?Sized>(&self, next_attempt: u32, rng: &mut R) -> SimDuration {
        let doublings = next_attempt.saturating_sub(2).min(20);
        let raw = self
            .base_backoff
            .as_micros()
            .saturating_mul(1u64 << doublings);
        let capped = raw.min(
            self.max_backoff
                .as_micros()
                .max(self.base_backoff.as_micros()),
        );
        let jitter = self.jitter.clamp(0.0, 1.0);
        let extra = if jitter > 0.0 && capped > 0 {
            (capped as f64 * rng.gen_range(0.0..jitter)) as u64
        } else {
            0
        };
        SimDuration::from_micros(capped.saturating_add(extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noop_policy_backs_off_zero_and_draws_nothing() {
        let policy = RetryPolicy::none();
        assert!(policy.is_noop());
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff_before(2, &mut a), SimDuration::ZERO);
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            policy.backoff_before(2, &mut rng),
            SimDuration::from_millis(200)
        );
        assert_eq!(
            policy.backoff_before(3, &mut rng),
            SimDuration::from_millis(400)
        );
        assert_eq!(
            policy.backoff_before(4, &mut rng),
            SimDuration::from_millis(800)
        );
        // 200 ms × 2^6 = 12.8 s caps at 3 s.
        assert_eq!(
            policy.backoff_before(8, &mut rng),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let policy = RetryPolicy::standard();
        let draws = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (2..8)
                .map(|n| policy.backoff_before(n, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        let mut rng = StdRng::seed_from_u64(9);
        for next in 2..8u32 {
            let base = {
                let quiet = RetryPolicy {
                    jitter: 0.0,
                    ..policy
                };
                let mut no_draws = StdRng::seed_from_u64(0);
                quiet.backoff_before(next, &mut no_draws)
            };
            let jittered = policy.backoff_before(next, &mut rng);
            assert!(jittered >= base);
            assert!(jittered.as_micros() < base.as_micros() + base.as_micros() / 2 + 1);
        }
    }

    #[test]
    fn probe_error_slugs_are_stable() {
        assert_eq!(ProbeError::Timeout.slug(), "timeout");
        assert_eq!(ProbeError::Blackhole.slug(), "blackhole");
        assert_eq!(ProbeError::CorruptReply.slug(), "corrupt_reply");
        assert_eq!(ProbeError::Exhausted { attempts: 3 }.slug(), "exhausted");
        assert!(ProbeError::Exhausted { attempts: 3 }
            .to_string()
            .contains('3'));
    }
}
