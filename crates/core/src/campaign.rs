//! Campaign orchestration: main-vantage-point snapshots, longitudinal series,
//! the CE-probing comparison run and the distributed cloud measurement.

use crate::executor::ShardedExecutor;
use crate::observation::{DomainRecord, HostMeasurement, MirrorUse};
use crate::resilience::RetryPolicy;
use crate::scanner::{ProbeMode, ScanOptions, Scanner};
use crate::vantage::VantagePoint;
use qem_netsim::CrossTraffic;
use qem_obs::{MetricsSnapshot, RunTelemetry};
use qem_web::{SnapshotDate, Universe};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Options shared by campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignOptions {
    /// Snapshot date of the measurement.
    pub date: SnapshotDate,
    /// Probe mode (ECT(0) methodology or the §6.3 CE run).
    pub probe: ProbeMode,
    /// Tracebox sampling probability for abnormal hosts.
    pub trace_sample_probability: f64,
    /// Worker-thread budget; `0` means one worker per available core.
    ///
    /// Single-vantage runs give the whole budget to each scan; the cloud
    /// campaign spends it on fleet-level fan-out first and divides the rest
    /// among the per-vantage scans.  Results never depend on the value.
    pub workers: usize,
    /// Seed.
    pub seed: u64,
    /// Opt-in shared-bottleneck scenario (background flows through each
    /// measured host's bottleneck).  Off by default; when off, campaign
    /// results are bit-identical to the single-flow methodology.
    pub cross_traffic: CrossTraffic,
    /// QUIC probe retry policy; [`RetryPolicy::none()`] by default.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl CampaignOptions {
    /// The week-15/2023 main measurement configuration.
    ///
    /// Scans fan out across every available core (`workers == 0`); thanks to
    /// the scanner's per-host RNG derivation the results are identical to a
    /// single-threaded run.
    pub fn paper_default() -> Self {
        CampaignOptions {
            date: SnapshotDate::APR_2023,
            probe: ProbeMode::Ect0,
            trace_sample_probability: 0.2,
            workers: 0,
            seed: 0x1299,
            cross_traffic: CrossTraffic::none(),
            retry: RetryPolicy::none(),
        }
    }

    /// The week-20/2023 CE-probing configuration (Figure 6).
    pub fn ce_probing() -> Self {
        CampaignOptions {
            date: SnapshotDate::MAY_2023,
            probe: ProbeMode::ForceCe,
            ..CampaignOptions::paper_default()
        }
    }

    /// The CE-probing run again, but with a congested shared bottleneck in
    /// front of every measured host: the "what if the queues were actually
    /// loaded" variant of Figure 6, where CE marking (and hence the ECE/ACK
    /// echo split) emerges from combined queue occupancy instead of the
    /// probe codepoint alone.
    pub fn ce_probing_under_load() -> Self {
        CampaignOptions {
            cross_traffic: CrossTraffic::congested(),
            ..CampaignOptions::ce_probing()
        }
    }

    /// Derive a copy with the given cross-traffic scenario.
    pub fn with_cross_traffic(self, cross_traffic: CrossTraffic) -> Self {
        CampaignOptions {
            cross_traffic,
            ..self
        }
    }

    fn scan_options(&self, ipv6: bool) -> ScanOptions {
        ScanOptions {
            date: self.date,
            ipv6,
            probe: self.probe,
            trace_sample_probability: self.trace_sample_probability,
            workers: self.workers,
            seed: self.seed,
            cross_traffic: self.cross_traffic,
            retry: self.retry,
        }
    }
}

/// All host measurements taken from one vantage point for one address family
/// at one date.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotMeasurement {
    /// Snapshot date.
    pub date: SnapshotDate,
    /// Whether this snapshot probed IPv6.
    pub ipv6: bool,
    /// The vantage point used.
    pub vantage: VantagePoint,
    /// Per-host measurements, keyed by host id.
    pub hosts: BTreeMap<usize, HostMeasurement>,
}

impl SnapshotMeasurement {
    /// Look up the measurement for a host.
    pub fn host(&self, host_id: usize) -> Option<&HostMeasurement> {
        self.hosts.get(&host_id)
    }

    /// Build per-domain records by joining the universe's DNS data with the
    /// per-host measurements — the paper's per-domain vs per-IP distinction.
    pub fn domain_records(&self, universe: &Universe) -> Vec<DomainRecord> {
        universe
            .domains
            .iter()
            .enumerate()
            .map(|(idx, domain)| {
                let host_id = domain
                    .host
                    .filter(|&h| universe.hosts[h].addr(self.ipv6).is_some());
                let measurement = host_id.and_then(|h| self.hosts.get(&h));
                let quic = measurement.map(|m| m.quic_reachable).unwrap_or(false);
                let mirror_use = if quic {
                    measurement.map(|m| m.mirror_use()).unwrap_or_default()
                } else {
                    MirrorUse::default()
                };
                let class = if quic {
                    measurement.and_then(|m| m.ecn_class())
                } else {
                    None
                };
                DomainRecord {
                    domain_idx: idx,
                    resolved: host_id.is_some(),
                    host_id,
                    quic,
                    mirror_use,
                    class,
                }
            })
            .collect()
    }

    /// Number of hosts reachable via QUIC in this snapshot.
    pub fn quic_host_count(&self) -> usize {
        self.hosts.values().filter(|m| m.quic_reachable).count()
    }
}

/// The result of the main-vantage-point campaign: IPv4 plus optional IPv6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// IPv4 snapshot.
    pub v4: SnapshotMeasurement,
    /// IPv6 snapshot, if requested.
    pub v6: Option<SnapshotMeasurement>,
}

/// Campaign runner bound to a universe.
pub struct Campaign<'a> {
    universe: &'a Universe,
}

impl<'a> Campaign<'a> {
    /// Create a campaign runner.
    pub fn new(universe: &'a Universe) -> Self {
        Campaign { universe }
    }

    /// The universe being measured.
    pub fn universe(&self) -> &Universe {
        self.universe
    }

    /// Run one snapshot from one vantage point.
    pub fn run_snapshot(
        &self,
        vantage: &VantagePoint,
        options: &CampaignOptions,
        ipv6: bool,
    ) -> SnapshotMeasurement {
        self.run_snapshot_with_telemetry(vantage, options, ipv6).0
    }

    /// Like [`Campaign::run_snapshot`], additionally returning the scan's
    /// deterministic metrics snapshot (probe outcome counters plus the
    /// aggregated engine/queue metrics of every simulated connection).
    pub fn run_snapshot_with_telemetry(
        &self,
        vantage: &VantagePoint,
        options: &CampaignOptions,
        ipv6: bool,
    ) -> (SnapshotMeasurement, MetricsSnapshot) {
        let scanner = Scanner::new(self.universe, vantage.clone(), options.scan_options(ipv6));
        let measurements = scanner.scan_all();
        let metrics = scanner.metrics_snapshot();
        let snapshot = SnapshotMeasurement {
            date: options.date,
            ipv6,
            vantage: vantage.clone(),
            hosts: measurements.into_iter().map(|m| (m.host_id, m)).collect(),
        };
        (snapshot, metrics)
    }

    /// Run the main-vantage-point campaign (IPv4, optionally IPv6).
    pub fn run_main(&self, options: &CampaignOptions, include_ipv6: bool) -> CampaignResult {
        self.run_main_with_telemetry(options, include_ipv6).0
    }

    /// Like [`Campaign::run_main`], additionally returning the run's
    /// telemetry: one metrics section per scanned address family, plus the
    /// campaign configuration as info lines.
    ///
    /// The telemetry is deterministic — it deliberately excludes anything
    /// dependent on worker count or wall time, so two runs of the same
    /// campaign serialise to byte-identical JSON.
    pub fn run_main_with_telemetry(
        &self,
        options: &CampaignOptions,
        include_ipv6: bool,
    ) -> (CampaignResult, RunTelemetry) {
        let main = VantagePoint::main();
        let mut telemetry = RunTelemetry::new();
        telemetry.set_info("campaign", "main");
        telemetry.set_info("date", options.date.to_string());
        telemetry.set_info("probe", format!("{:?}", options.probe));
        telemetry.set_info("seed", options.seed.to_string());
        let (v4, v4_metrics) = self.run_snapshot_with_telemetry(&main, options, false);
        telemetry.insert_section("scan.v4", v4_metrics);
        let v6 = include_ipv6.then(|| {
            // The paper's IPv6 run happened two weeks earlier (week 13/2023);
            // model that by keeping the same month.
            let (v6, v6_metrics) = self.run_snapshot_with_telemetry(&main, options, true);
            telemetry.insert_section("scan.v6", v6_metrics);
            v6
        });
        (CampaignResult { v4, v6 }, telemetry)
    }

    /// Run the longitudinal series (one IPv4 snapshot per month, Figure 3/4/8).
    pub fn run_longitudinal(
        &self,
        dates: &[SnapshotDate],
        options: &CampaignOptions,
    ) -> Vec<SnapshotMeasurement> {
        let main = VantagePoint::main();
        dates
            .iter()
            .map(|&date| {
                let opts = CampaignOptions { date, ..*options };
                self.run_snapshot(&main, &opts, false)
            })
            .collect()
    }

    /// Run the distributed cloud campaign (§4.3 / §8).
    ///
    /// As in the paper, the cloud workers only probe hosts (IPs) that the
    /// main vantage point found reachable via QUIC — the per-IP deduplication
    /// that reduces load by a factor of ~40.  Each worker measures both
    /// address families.
    pub fn run_cloud(
        &self,
        main_v4: &SnapshotMeasurement,
        main_v6: Option<&SnapshotMeasurement>,
        options: &CampaignOptions,
    ) -> Vec<(
        VantagePoint,
        SnapshotMeasurement,
        Option<SnapshotMeasurement>,
    )> {
        let v4_targets: Vec<usize> = main_v4
            .hosts
            .values()
            .filter(|m| m.quic_reachable)
            .map(|m| m.host_id)
            .collect();
        let v6_targets: Vec<usize> = main_v6
            .map(|snapshot| {
                snapshot
                    .hosts
                    .values()
                    .filter(|m| m.quic_reachable)
                    .map(|m| m.host_id)
                    .collect()
            })
            .unwrap_or_default();

        // Fan out across the fleet itself: every vantage point is an
        // independent measurement, so the executor shards over vantages and
        // any worker budget beyond the fleet size is divided among the
        // per-vantage scans.  Per-host determinism makes this reshuffling
        // invisible in the results.
        let fleet = VantagePoint::cloud_fleet();
        let executor = ShardedExecutor::new(options.workers).with_batch_size(1);
        let per_vantage_options = CampaignOptions {
            workers: (executor.workers() / fleet.len()).max(1),
            ..*options
        };
        executor.run(&fleet, |vantage| {
            let scanner_v4 = Scanner::new(
                self.universe,
                vantage.clone(),
                per_vantage_options.scan_options(false),
            );
            let hosts_v4 = scanner_v4.scan_hosts(&v4_targets);
            let snap_v4 = SnapshotMeasurement {
                date: options.date,
                ipv6: false,
                vantage: vantage.clone(),
                hosts: hosts_v4.into_iter().map(|m| (m.host_id, m)).collect(),
            };
            let snap_v6 = if v6_targets.is_empty() {
                None
            } else {
                let scanner_v6 = Scanner::new(
                    self.universe,
                    vantage.clone(),
                    per_vantage_options.scan_options(true),
                );
                let hosts_v6 = scanner_v6.scan_hosts(&v6_targets);
                Some(SnapshotMeasurement {
                    date: options.date,
                    ipv6: true,
                    vantage: vantage.clone(),
                    hosts: hosts_v6.into_iter().map(|m| (m.host_id, m)).collect(),
                })
            };
            (vantage.clone(), snap_v4, snap_v6)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::EcnClass;
    use qem_web::UniverseConfig;

    fn universe() -> Universe {
        Universe::generate(&UniverseConfig::tiny())
    }

    #[test]
    fn main_campaign_produces_domain_records() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let result = campaign.run_main(&CampaignOptions::paper_default(), false);
        let records = result.v4.domain_records(&universe);
        assert_eq!(records.len(), universe.domains.len());
        let quic = records.iter().filter(|r| r.quic).count();
        let resolved = records.iter().filter(|r| r.resolved).count();
        assert!(quic > 0);
        assert!(resolved > quic);
        // Mirroring domains are a small minority, capable even fewer.
        let mirroring = records.iter().filter(|r| r.mirror_use.mirroring).count();
        let capable = records
            .iter()
            .filter(|r| r.class == Some(EcnClass::Capable))
            .count();
        assert!(mirroring < quic / 4);
        assert!(capable <= mirroring);
    }

    #[test]
    fn ipv6_snapshot_covers_fewer_domains() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let result = campaign.run_main(&CampaignOptions::paper_default(), true);
        let v6 = result.v6.unwrap();
        let v4_quic = result
            .v4
            .domain_records(&universe)
            .iter()
            .filter(|r| r.quic)
            .count();
        let v6_quic = v6
            .domain_records(&universe)
            .iter()
            .filter(|r| r.quic)
            .count();
        assert!(v6_quic < v4_quic);
        assert!(v6_quic > 0);
    }

    #[test]
    fn longitudinal_mirroring_dips_and_recovers() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let snapshots = campaign.run_longitudinal(
            &[
                SnapshotDate::JUN_2022,
                SnapshotDate::FEB_2023,
                SnapshotDate::APR_2023,
            ],
            &CampaignOptions::paper_default(),
        );
        let mirroring_domains: Vec<usize> = snapshots
            .iter()
            .map(|s| {
                s.domain_records(&universe)
                    .iter()
                    .filter(|r| r.mirror_use.mirroring)
                    .count()
            })
            .collect();
        // The Figure 3 shape: decline from June 2022 to February 2023, strong
        // recovery by April 2023.
        assert!(mirroring_domains[1] < mirroring_domains[0]);
        assert!(mirroring_domains[2] > mirroring_domains[0]);
    }

    #[test]
    fn ce_probing_flips_the_probe_codepoint_on_quic_and_tcp() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let ect0_run = campaign.run_main(&CampaignOptions::paper_default(), false);
        let ce_run = campaign.run_main(&CampaignOptions::ce_probing(), false);

        // QUIC path: the client-side sent counters are ground truth for what
        // the probes carried.  Under ForceCe every marked packet is CE and
        // none is ECT(0); under the standard methodology it is the opposite.
        let quic_sent = |result: &CampaignResult| {
            let mut ect0 = 0u64;
            let mut ce = 0u64;
            for m in result.v4.hosts.values() {
                if let Some(q) = &m.quic {
                    ect0 += q.sent_counts.ect0;
                    ce += q.sent_counts.ce;
                }
            }
            (ect0, ce)
        };
        let (ect0_sent, ce_sent) = quic_sent(&ce_run);
        assert!(ce_sent > 0, "ForceCe must send CE-marked QUIC packets");
        assert_eq!(ect0_sent, 0, "ForceCe must not send ECT(0) on QUIC");
        let (ect0_sent, ce_sent) = quic_sent(&ect0_run);
        assert!(ect0_sent > 0);
        assert_eq!(ce_sent, 0, "the standard methodology never sends CE");

        // TCP path: no router policy ever *creates* ECT(0), so segments
        // arriving at servers with ECT(0) prove the client probed with it —
        // and their absence under ForceCe proves the flip.
        let tcp_observed = |result: &CampaignResult| {
            let mut ect0 = 0u64;
            let mut ce = 0u64;
            for m in result.v4.hosts.values() {
                if let Some(t) = &m.tcp {
                    ect0 += t.server_observed_ecn.ect0;
                    ce += t.server_observed_ecn.ce;
                }
            }
            (ect0, ce)
        };
        let (ect0_seen, ce_seen) = tcp_observed(&ce_run);
        assert!(ce_seen > 0, "ForceCe must reach servers with CE over TCP");
        assert_eq!(ect0_seen, 0, "ForceCe must not probe TCP with ECT(0)");
        let (ect0_seen, _) = tcp_observed(&ect0_run);
        assert!(ect0_seen > 0);
    }

    #[test]
    fn campaign_telemetry_is_worker_independent_json() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let base = CampaignOptions::paper_default();
        let (_, single) =
            campaign.run_main_with_telemetry(&CampaignOptions { workers: 1, ..base }, false);
        let (_, parallel) =
            campaign.run_main_with_telemetry(&CampaignOptions { workers: 4, ..base }, false);
        assert_eq!(single.to_json(), parallel.to_json());
        let scan = single.section("scan.v4").expect("v4 section");
        assert!(scan.counter("scan.hosts").unwrap() > 0);
        assert!(scan.counter("engine.events_processed").unwrap() > 0);
        assert_eq!(single.info("workers"), None, "worker count must not leak");
    }

    #[test]
    fn cloud_campaign_only_probes_deduplicated_quic_hosts() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let options = CampaignOptions {
            workers: 2,
            ..CampaignOptions::paper_default()
        };
        let main = campaign.run_main(&options, false);
        let cloud = campaign.run_cloud(&main.v4, None, &options);
        assert_eq!(cloud.len(), 16);
        let main_quic = main.v4.quic_host_count();
        for (vantage, snap_v4, snap_v6) in &cloud {
            assert!(snap_v4.hosts.len() <= main_quic, "{}", vantage.name);
            assert!(snap_v6.is_none());
        }
    }
}
