//! The zgrab2-style scanner: probes hosts with QUIC (HTTP/3) and TCP
//! (HTTP/2 / HTTP/1.1), records ECN observations and, for abnormal hosts,
//! follows up with a tracebox measurement.
//!
//! Hosts are scanned in parallel by the sharded batch executor
//! ([`crate::executor::ShardedExecutor`]).  Each host gets its own
//! deterministic RNG derived from the scan seed and the host id, so a scan
//! produces identical results regardless of worker count or scheduling.

use crate::executor::{ExecutorStats, ShardedExecutor};
use crate::metrics::ScanMetrics;
use crate::observation::{EcnClass, HostMeasurement};
use crate::resilience::{classify_probe, ProbeError, RetryPolicy};
use crate::vantage::VantagePoint;
use qem_netsim::{build_duplex_path, Asn, CrossTraffic, DuplexPath, FaultPlan, TransitProfile};
use qem_obs::MetricsSnapshot;
use qem_quic::behavior::EcnMirroringBehavior;
use qem_quic::{ClientConfig, ConnectionRun, DriverConfig, EcnConfig};
use qem_tcp::{TcpClientConfig, TcpConnectionRun};
use qem_tracebox::{analyze_trace, trace_path, TraceConfig};
use qem_web::{SnapshotDate, StackProfile, Universe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// What the probes carry on the forward path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeMode {
    /// The standard methodology: ECT(0) plus ECN validation (§4.1).
    Ect0,
    /// The §6.3 comparison run: replace ECT(0) with CE on both QUIC and TCP.
    ForceCe,
}

/// Scanner options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanOptions {
    /// Snapshot date (selects the stack behaviour of every host).
    pub date: SnapshotDate,
    /// Probe IPv6 instead of IPv4.
    pub ipv6: bool,
    /// Probe codepoint / mode.
    pub probe: ProbeMode,
    /// Probability that an abnormal host is traced (the paper samples 20 %).
    pub trace_sample_probability: f64,
    /// Worker threads; `0` means one worker per available core.
    pub workers: usize,
    /// Seed for all per-host randomness.
    pub seed: u64,
    /// Opt-in shared-bottleneck scenario: background flows through each
    /// measured host's bottleneck router.  [`CrossTraffic::none()`] (the
    /// default everywhere) keeps the scan bit-identical to the single-flow
    /// methodology.
    pub cross_traffic: CrossTraffic,
    /// QUIC probe retry policy.  [`RetryPolicy::none()`] (the default)
    /// keeps the scan bit-identical to the single-attempt methodology.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl ScanOptions {
    /// The paper's main-vantage-point configuration for a given date.
    ///
    /// `workers == 0` fans the scan out across every available core; the
    /// per-host RNG derivation keeps the results identical to a
    /// single-threaded run.
    pub fn paper_default(date: SnapshotDate) -> Self {
        ScanOptions {
            date,
            ipv6: false,
            probe: ProbeMode::Ect0,
            trace_sample_probability: 0.2,
            workers: 0,
            seed: 0x5eed,
            cross_traffic: CrossTraffic::none(),
            retry: RetryPolicy::none(),
        }
    }

    /// Same, but probing IPv6.
    pub fn ipv6(date: SnapshotDate) -> Self {
        ScanOptions {
            ipv6: true,
            ..ScanOptions::paper_default(date)
        }
    }
}

/// The scanner.
pub struct Scanner<'a> {
    universe: &'a Universe,
    vantage: VantagePoint,
    options: ScanOptions,
    /// Number of domains served by each host; tracebox sampling is applied
    /// per domain (with each IP traced at most once), so heavy-hitter IPs are
    /// almost always covered — exactly the property §6.1 relies on.
    domain_weight: Vec<u32>,
    /// Probe-outcome metrics, recorded per host and merged commutatively —
    /// the deterministic part of the scan's observability surface.
    metrics: ScanMetrics,
    /// Impairments injected on every forward path (chaos scans).  Empty by
    /// default; not part of [`ScanOptions`] because a plan is a schedule,
    /// not part of a snapshot's identity — stores reject faulted scans.
    fault_plan: FaultPlan,
}

impl<'a> Scanner<'a> {
    /// Create a scanner for one vantage point.
    pub fn new(universe: &'a Universe, vantage: VantagePoint, options: ScanOptions) -> Self {
        let mut domain_weight = vec![0u32; universe.hosts.len()];
        for domain in &universe.domains {
            if let Some(host) = domain.host {
                domain_weight[host] += 1;
            }
        }
        Scanner {
            universe,
            vantage,
            options,
            domain_weight,
            metrics: ScanMetrics::new(),
            fault_plan: FaultPlan::default(),
        }
    }

    /// Inject `plan` on the forward path of every probed host (builder
    /// style).  Pair with a non-noop [`RetryPolicy`] to measure what
    /// resilience costs under impairment.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &ScanOptions {
        &self.options
    }

    /// The scanner's metrics handle.
    pub fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// The deterministic metrics of everything scanned so far: probe
    /// outcome counters, per-class counts and the aggregated engine/queue
    /// metrics.  Bit-identical across worker counts.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Executor scheduling telemetry (batches per worker, reorder depth).
    /// This varies with the worker count by construction — it is diagnostic
    /// noise and is deliberately kept out of [`Scanner::metrics_snapshot`].
    pub fn scheduling_snapshot(&self) -> MetricsSnapshot {
        self.metrics.scheduling()
    }

    /// Scan every host that has an address in the requested family.
    pub fn scan_all(&self) -> Vec<HostMeasurement> {
        self.scan_hosts(&self.universe.scan_population(self.options.ipv6))
    }

    /// Scan a specific set of hosts in parallel.
    ///
    /// Results are sorted by host id (duplicates probed once, as a real
    /// scanner would) and — because every per-host RNG is a pure function of
    /// `seed × host id` — bit-identical for any worker count.
    pub fn scan_hosts(&self, host_ids: &[usize]) -> Vec<HostMeasurement> {
        let mut out = Vec::with_capacity(host_ids.len());
        self.scan_hosts_streaming(host_ids, |m| out.push(m));
        out
    }

    /// Scan a specific set of hosts in parallel, handing each measurement to
    /// `sink` in ascending host-id order **as soon as it is available** —
    /// the whole result set is never materialised in memory.
    ///
    /// This is the entry point store-backed campaigns use: the sink is a
    /// segment writer that spills measurements to disk while the scan is
    /// still running.  Because every per-host RNG is a pure function of
    /// `seed × host id`, the delivered sequence is bit-identical to
    /// [`Scanner::scan_hosts`] for any worker count.
    pub fn scan_hosts_streaming<S: FnMut(HostMeasurement)>(&self, host_ids: &[usize], sink: S) {
        // Input order is delivery order; sort (and dedup) up front so the
        // stream arrives in host-id order, matching `scan_hosts`.
        let mut ids = host_ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let executor = ShardedExecutor::new(self.options.workers);
        let stats = ExecutorStats::new(self.options.workers);
        executor.run_streaming_observed(&ids, |&id| self.measure_host(id), sink, &stats);
        self.metrics.absorb_scheduling(&stats.merged());
    }

    /// Measure one host: QUIC, TCP and (sampled) tracebox.
    pub fn measure_host(&self, host_id: usize) -> HostMeasurement {
        let host = &self.universe.hosts[host_id];
        let mut rng = StdRng::seed_from_u64(
            self.options
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(host_id as u64),
        );
        self.metrics.hosts.inc();
        let v6 = self.options.ipv6;
        let Some(server_addr) = host.addr(v6) else {
            self.metrics.no_address.inc();
            return HostMeasurement {
                host_id,
                quic_reachable: false,
                quic: None,
                tcp: None,
                trace: None,
            };
        };
        let client_addr = self.client_addr(v6);
        let path = self.path_to(host_id, v6, &mut rng);

        // ---- QUIC ---------------------------------------------------------
        let behavior = self.effective_quic_behavior(host_id);
        if behavior.is_none() {
            self.metrics.quic_no_stack.inc();
        }
        let quic_report = behavior.map(|behavior| {
            let sni = format!("www.host-{host_id}.example");
            let client_config = match self.options.probe {
                ProbeMode::Ect0 => ClientConfig::paper_default(&sni),
                ProbeMode::ForceCe => ClientConfig::force_ce(&sni),
            };
            self.metrics.quic_attempted.inc();
            let policy = self.options.retry;
            let max_attempts = policy.attempts.max(1);
            let mut attempt = 1u32;
            loop {
                let driver = DriverConfig::new(client_addr, server_addr);
                // A disabled scenario falls back to the plain single-flow run
                // inside the builder, so the old enabled/disabled call matrix
                // collapses into one expression.
                let run =
                    ConnectionRun::new(client_config.clone(), behavior.clone(), &path, driver)
                        .cross_traffic(self.options.cross_traffic)
                        .telemetry(true)
                        .execute(&mut rng);
                let outcome = run.connection;
                self.metrics
                    .quic_elapsed_us
                    .record(outcome.elapsed.as_micros());
                self.metrics.quic_forward_losses.add(outcome.forward_losses);
                self.metrics.quic_reverse_losses.add(outcome.reverse_losses);
                let telemetry = run.telemetry.unwrap_or_default();
                self.metrics.absorb_engine(&telemetry.metrics);
                match classify_probe(&outcome) {
                    Ok(()) => {
                        if attempt > 1 {
                            self.metrics.quic_recovered.inc();
                        }
                        break outcome.report;
                    }
                    Err(error) if attempt < max_attempts => {
                        self.metrics.record_probe_error(error);
                        let backoff = policy.backoff_before(attempt + 1, &mut rng);
                        self.metrics.quic_backoff_us.record(backoff.as_micros());
                        self.metrics.quic_retries.inc();
                        attempt += 1;
                    }
                    Err(error) => {
                        // The final verdict: the concrete error, plus the
                        // exhausted row when retries were actually burned.
                        self.metrics.record_probe_error(error);
                        if attempt > 1 {
                            self.metrics
                                .record_probe_error(ProbeError::Exhausted { attempts: attempt });
                        }
                        break outcome.report;
                    }
                }
            }
        });
        if quic_report.as_ref().is_some_and(|r| r.connected) {
            self.metrics.quic_connected.inc();
        }
        let quic_reachable = quic_report
            .as_ref()
            .map(|r| r.connected && r.response.is_some())
            .unwrap_or(false);
        if quic_reachable {
            self.metrics.quic_reachable.inc();
        }

        // ---- TCP ----------------------------------------------------------
        let tcp_config = match self.options.probe {
            ProbeMode::Ect0 => TcpClientConfig::ect0(),
            ProbeMode::ForceCe => TcpClientConfig::force_ce(),
        };
        let tcp_report = Some(
            TcpConnectionRun::new(
                tcp_config,
                host.tcp_behavior(),
                client_addr,
                server_addr,
                &path,
            )
            .cross_traffic(self.options.cross_traffic)
            .execute(&mut rng)
            .report,
        );
        self.metrics.tcp_probed.inc();
        if tcp_report.as_ref().is_some_and(|r| r.connected) {
            self.metrics.tcp_connected.inc();
        }

        // ---- Tracebox (sampled, only on abnormal behaviour) ----------------
        let class = quic_report.as_ref().and_then(EcnClass::classify);
        if let Some(class) = class {
            self.metrics.record_class(class);
        }
        let abnormal = match class {
            Some(EcnClass::Capable) | None => false,
            Some(_) => true,
        };
        // Per-domain sampling, at most one trace per IP: an IP serving `n`
        // domains is traced with probability 1 - (1-p)^n.
        let per_domain_p = self.options.trace_sample_probability.clamp(0.0, 1.0);
        let weight = self.domain_weight.get(host_id).copied().unwrap_or(1).max(1);
        let host_trace_p = 1.0 - (1.0 - per_domain_p).powi(weight.min(1_000) as i32);
        let trace = if abnormal && rng.gen_bool(host_trace_p) {
            let trace = trace_path(
                &path.forward,
                client_addr,
                server_addr,
                &TraceConfig::default(),
                &mut rng,
            );
            let as_org = &self.universe.as_org;
            let analysis = analyze_trace(&trace, &|ip| as_org.asn_of_ip(ip));
            self.metrics.traced.inc();
            if analysis.is_impaired() {
                self.metrics.trace_impaired.inc();
            }
            Some(analysis)
        } else {
            None
        };

        HostMeasurement {
            host_id,
            quic_reachable,
            quic: quic_report,
            tcp: tcp_report,
            trace,
        }
    }

    /// ECN configuration used by the QUIC client (exposed for the ablation
    /// benches, which swap in the RFC's 10-packet budget).
    pub fn ecn_config(&self) -> EcnConfig {
        match self.options.probe {
            ProbeMode::Ect0 => EcnConfig::paper_default(),
            ProbeMode::ForceCe => EcnConfig::force_ce(),
        }
    }

    fn client_addr(&self, v6: bool) -> IpAddr {
        if v6 {
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 0x10))
        } else {
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10))
        }
    }

    /// The path from this vantage point to the host, after applying the
    /// location quirks that are part of the simulated world.
    fn path_to(&self, host_id: usize, v6: bool, rng: &mut StdRng) -> DuplexPath {
        let host = &self.universe.hosts[host_id];
        let mut transit = if v6 { host.transit_v6 } else { host.transit_v4 };
        if !v6 {
            let quirks = &self.vantage.quirks;
            match transit {
                TransitProfile::Clean
                    if quirks.extra_remark_probability > 0.0
                        && rng.gen_bool(quirks.extra_remark_probability.clamp(0.0, 1.0)) =>
                {
                    transit = TransitProfile::Remarking { asn: Asn::ARELION };
                }
                TransitProfile::Remarking { .. }
                    if quirks.remark_suppression_probability > 0.0
                        && rng.gen_bool(quirks.remark_suppression_probability.clamp(0.0, 1.0)) =>
                {
                    transit = TransitProfile::Clean;
                }
                _ => {}
            }
        }
        let mut duplex = build_duplex_path(
            self.vantage.asn,
            host.asn,
            transit,
            TransitProfile::Clean,
            v6,
        );
        if !self.fault_plan.is_empty() {
            duplex.forward = duplex.forward.with_fault(self.fault_plan.clone());
        }
        duplex
    }

    /// The QUIC behaviour of the host at the scan date, after location quirks.
    fn effective_quic_behavior(
        &self,
        host_id: usize,
    ) -> Option<qem_quic::behavior::ServerBehavior> {
        let host = &self.universe.hosts[host_id];
        let mut behavior = host.quic_behavior_at(self.options.date)?;
        let quirks = &self.vantage.quirks;
        if quirks.wix_unreachable && host.stack == Some(StackProfile::GooglePepyakaProxy) {
            return None;
        }
        if quirks.google_ce_anomaly
            && matches!(
                host.stack,
                Some(
                    StackProfile::GoogleFrontend
                        | StackProfile::GooglePepyakaProxy
                        | StackProfile::GoogleEct1Remark
                )
            )
        {
            behavior.mirroring = if host_id % 3 == 0 {
                EcnMirroringBehavior::AlwaysCe
            } else {
                EcnMirroringBehavior::MirrorOnlyHandshake
            };
        }
        Some(behavior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_web::UniverseConfig;

    fn universe() -> Universe {
        Universe::generate(&UniverseConfig::tiny())
    }

    #[test]
    fn scan_is_deterministic_across_worker_counts() {
        let universe = universe();
        let quic_hosts: Vec<usize> = universe
            .hosts
            .iter()
            .filter(|h| h.stack.is_some())
            .map(|h| h.id)
            .take(40)
            .collect();
        let options = ScanOptions::paper_default(SnapshotDate::APR_2023);
        let single = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions {
                workers: 1,
                ..options
            },
        )
        .scan_hosts(&quic_hosts);
        for workers in [4, 8] {
            let parallel = Scanner::new(
                &universe,
                VantagePoint::main(),
                ScanOptions { workers, ..options },
            )
            .scan_hosts(&quic_hosts);
            assert_eq!(single, parallel, "workers={workers}");
        }
    }

    #[test]
    fn scan_metrics_match_across_worker_counts_but_scheduling_differs() {
        let universe = universe();
        let host_ids: Vec<usize> = universe.hosts.iter().map(|h| h.id).take(16).collect();
        let options = ScanOptions::paper_default(SnapshotDate::APR_2023);
        let run = |workers: usize| {
            let scanner = Scanner::new(
                &universe,
                VantagePoint::main(),
                ScanOptions { workers, ..options },
            );
            scanner.scan_hosts(&host_ids);
            (scanner.metrics_snapshot(), scanner.scheduling_snapshot())
        };
        let (single, single_sched) = run(1);
        let (quad, _) = run(4);
        assert_eq!(single, quad);
        assert_eq!(single.to_json(), quad.to_json());
        assert_eq!(single.counter("scan.hosts"), Some(16));
        assert!(single.counter("engine.events_processed").unwrap() > 0);
        // Scheduling telemetry exists but is allowed to differ per run.
        assert_eq!(single_sched.counter("executor.items"), Some(16));
    }

    #[test]
    fn quic_hosts_answer_and_tcp_hosts_do_not_speak_quic() {
        let universe = universe();
        let scanner = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions::paper_default(SnapshotDate::APR_2023),
        );
        let quic_host = universe.hosts.iter().find(|h| h.stack.is_some()).unwrap();
        let tcp_host = universe.hosts.iter().find(|h| h.stack.is_none()).unwrap();
        let m = scanner.measure_host(quic_host.id);
        assert!(m.quic.is_some());
        assert!(m.tcp.as_ref().unwrap().connected);
        let m = scanner.measure_host(tcp_host.id);
        assert!(m.quic.is_none());
        assert!(!m.quic_reachable);
        assert!(m.tcp.as_ref().unwrap().connected);
    }

    #[test]
    fn abnormal_hosts_get_traced_when_sampling_is_certain() {
        let universe = universe();
        let scanner = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions {
                trace_sample_probability: 1.0,
                ..ScanOptions::paper_default(SnapshotDate::APR_2023)
            },
        );
        // A Cloudflare host never mirrors → always abnormal → always traced.
        let cf = universe
            .providers
            .iter()
            .position(|p| p.name == "Cloudflare")
            .unwrap();
        let host = universe
            .hosts
            .iter()
            .find(|h| h.provider == cf && h.stack.is_some())
            .unwrap();
        let m = scanner.measure_host(host.id);
        assert!(m.trace.is_some());
        assert!(!m.trace.unwrap().is_impaired());
    }

    #[test]
    fn capable_hosts_are_not_traced() {
        let universe = universe();
        let scanner = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions {
                trace_sample_probability: 1.0,
                ..ScanOptions::paper_default(SnapshotDate::APR_2023)
            },
        );
        let amazon = universe
            .providers
            .iter()
            .position(|p| p.name == "Amazon")
            .unwrap();
        let host = universe
            .hosts
            .iter()
            .find(|h| h.provider == amazon && h.segment == "cloudfront")
            .unwrap();
        let m = scanner.measure_host(host.id);
        assert_eq!(m.ecn_class(), Some(EcnClass::Capable));
        assert!(m.trace.is_none());
    }

    #[test]
    fn cleared_paths_yield_no_mirroring_and_a_cleared_trace() {
        let universe = universe();
        let scanner = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions {
                trace_sample_probability: 1.0,
                ..ScanOptions::paper_default(SnapshotDate::APR_2023)
            },
        );
        let host = universe
            .hosts
            .iter()
            .find(|h| matches!(h.transit_v4, TransitProfile::Clearing { .. }) && h.stack.is_some())
            .unwrap();
        let m = scanner.measure_host(host.id);
        assert_eq!(m.ecn_class(), Some(EcnClass::NoMirroring));
        let trace = m.trace.expect("abnormal host must be traced");
        assert!(trace.is_impaired());
    }

    #[test]
    fn ipv6_scan_only_covers_dual_stack_hosts() {
        let universe = universe();
        let scanner = Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions::ipv6(SnapshotDate::APR_2023),
        );
        let results = scanner.scan_all();
        assert!(!results.is_empty());
        for m in &results {
            assert!(universe.hosts[m.host_id].ipv6.is_some());
        }
    }
}
