//! Sharded, batch-dequeuing executor for embarrassingly-parallel measurement
//! work.
//!
//! The scanner's original worker loop handed hosts to threads one id at a
//! time over a channel, which serialises on the channel lock once per host.
//! This executor instead shards the input into contiguous batches and lets
//! workers *dequeue whole batches*: the per-item synchronisation cost is
//! amortised over [`ShardedExecutor::batch_size`] items, so throughput scales
//! with cores even when a single measurement is cheap.
//!
//! Determinism contract: the executor only controls *scheduling*.  As long
//! as the supplied closure is a pure function of the item (the scanner
//! derives each host's RNG from `seed × host id`), the returned vector is
//! bit-identical for every worker count — results are reassembled in input
//! order, not completion order.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// A sharded batch executor with a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedExecutor {
    workers: usize,
    batch_size: usize,
}

/// Work below this size is run inline: thread startup would dominate.
const SEQUENTIAL_CUTOFF: usize = 32;

/// Upper bound on the batch size picked by [`ShardedExecutor::new`].
const MAX_BATCH: usize = 256;

impl ShardedExecutor {
    /// Create an executor.  `workers == 0` means "one worker per available
    /// core"; any other value is used as-is.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        };
        ShardedExecutor {
            workers,
            batch_size: 0,
        }
    }

    /// Override the automatic batch size (values are clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The batch size used for `n` items.
    ///
    /// Aims for ~8 batches per worker so stragglers rebalance, bounded by
    /// [`MAX_BATCH`] so the result channel never holds huge payloads.
    pub fn batch_size(&self, n: usize) -> usize {
        if self.batch_size > 0 {
            return self.batch_size;
        }
        (n / (self.workers * 8).max(1)).clamp(1, MAX_BATCH)
    }

    /// Apply `work` to every item, returning outputs in input order.
    ///
    /// The output is identical to `items.iter().map(work).collect()` for any
    /// worker count, provided `work` is a pure function of its argument.
    pub fn run<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        // An explicit batch size signals coarse-grained items (e.g. one whole
        // vantage-point scan each); only auto-batched work gets the inline
        // shortcut for small inputs.
        let run_inline =
            self.workers <= 1 || (self.batch_size == 0 && items.len() < SEQUENTIAL_CUTOFF);
        if run_inline {
            return items.iter().map(work).collect();
        }

        let batch = self.batch_size(items.len());
        let shard_count = items.len().div_ceil(batch);
        // Queue every shard up front; workers drain the queue batch-by-batch,
        // so a worker stuck on an expensive shard simply claims fewer shards.
        let (shard_tx, shard_rx) = channel::unbounded::<(usize, usize, usize)>();
        for shard in 0..shard_count {
            let start = shard * batch;
            let end = (start + batch).min(items.len());
            shard_tx.send((shard, start, end)).expect("queue shards");
        }
        drop(shard_tx);

        let (result_tx, result_rx) = channel::unbounded::<(usize, Vec<T>)>();
        let work = &work;
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(shard_count) {
                let shard_rx = shard_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((shard, start, end)) = shard_rx.recv() {
                        let outputs: Vec<T> = items[start..end].iter().map(work).collect();
                        if result_tx.send((shard, outputs)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(result_tx);

        // Reassemble in shard order: completion order is scheduling noise.
        let mut shards: Vec<Option<Vec<T>>> = (0..shard_count).map(|_| None).collect();
        for (shard, outputs) in result_rx.iter() {
            shards[shard] = Some(outputs);
        }
        shards
            .into_iter()
            .flat_map(|s| s.expect("every shard completes"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        assert!(ShardedExecutor::new(0).workers() >= 1);
        assert_eq!(ShardedExecutor::new(3).workers(), 3);
    }

    #[test]
    fn output_order_matches_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1_000).rev().collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 4, 8, 16] {
            let got = ShardedExecutor::new(workers).run(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn small_inputs_run_inline_without_threads() {
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF - 1).collect();
        let calls = AtomicUsize::new(0);
        let got = ShardedExecutor::new(8).run(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(got, items);
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let items: Vec<usize> = (0..10_000).collect();
        let calls = AtomicUsize::new(0);
        let got = ShardedExecutor::new(7).with_batch_size(13).run(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(got, items);
    }

    #[test]
    fn automatic_batch_size_is_bounded() {
        let ex = ShardedExecutor::new(4);
        assert_eq!(ex.batch_size(0), 1);
        assert!(ex.batch_size(100) >= 1);
        assert!(ex.batch_size(10_000_000) <= MAX_BATCH);
        assert_eq!(ex.with_batch_size(5).batch_size(10_000), 5);
    }
}
