//! Sharded, batch-dequeuing executor for embarrassingly-parallel measurement
//! work.
//!
//! The scanner's original worker loop handed hosts to threads one id at a
//! time over a channel, which serialises on the channel lock once per host.
//! This executor instead shards the input into contiguous batches and lets
//! workers *dequeue whole batches*: the per-item synchronisation cost is
//! amortised over [`ShardedExecutor::batch_size`] items, so throughput scales
//! with cores even when a single measurement is cheap.
//!
//! Determinism contract: the executor only controls *scheduling*.  As long
//! as the supplied closure is a pure function of the item (the scanner
//! derives each host's RNG from `seed × host id`), the returned vector is
//! bit-identical for every worker count — results are reassembled in input
//! order, not completion order.

use crossbeam::channel;
use qem_obs::{MetricsSnapshot, ShardedRegistry};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;

/// Scheduling telemetry of one (or more) streaming runs: per-worker shards
/// recording claimed batches and processed items, plus the collector's
/// reorder-buffer high-water mark.
///
/// **This is scheduling noise, not scan data.**  Batch sizes and reorder
/// depths depend on the worker count and on thread timing, so these metrics
/// are deliberately kept out of the deterministic snapshots that CI
/// byte-diffs (`Scanner::metrics_snapshot`, `RunTelemetry`) — they are for
/// operators watching a live run.  The shards are merged in worker-id
/// order, so *for a fixed schedule* the merge itself is reproducible.
#[derive(Debug)]
pub struct ExecutorStats {
    /// One shard per worker plus one for the collector thread.
    shards: ShardedRegistry,
    workers: usize,
}

impl ExecutorStats {
    /// Stats sized for `workers` worker threads (0 resolves like
    /// [`ShardedExecutor::new`]).
    pub fn new(workers: usize) -> Self {
        let workers = ShardedExecutor::new(workers).workers();
        ExecutorStats {
            shards: ShardedRegistry::new(workers + 1),
            workers,
        }
    }

    /// The shard registry of worker `w` (the collector uses the last shard).
    fn shard(&self, w: usize) -> &qem_obs::MetricsRegistry {
        self.shards.shard(w)
    }

    /// Merge every worker shard, in worker-id order.
    pub fn merged(&self) -> MetricsSnapshot {
        let mut snap = self.shards.merged();
        snap.set_gauge("executor.workers", self.workers as u64);
        snap
    }
}

/// A sharded batch executor with a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedExecutor {
    workers: usize,
    batch_size: usize,
}

/// Work below this size is run inline: thread startup would dominate.
const SEQUENTIAL_CUTOFF: usize = 32;

use std::sync::{Condvar, Mutex};

/// Shared flush state of one streaming run.
struct Frontier {
    /// Index of the next shard the sink is waiting for.
    flushed: usize,
    /// Set when the run is being torn down (sink panicked): throttled
    /// workers must exit instead of waiting for the frontier to move.
    cancelled: bool,
}

/// Wakes throttled workers with `cancelled = true` when dropped.
///
/// Two deployments, both about panics:
/// * in the collector closure (`only_on_panic = false`): runs on every exit,
///   covering a panicking *sink* — harmless on the normal path, where the
///   workers are already gone;
/// * in each worker (`only_on_panic = true`): a panicking *work* closure
///   dies without sending its shard, so the frontier would never reach it
///   and every other worker would park on the throttle forever while the
///   collector waits for their senders — cancellation breaks that cycle and
///   lets the scope join propagate the panic.
struct CancelOnDrop<'a> {
    frontier: &'a Mutex<Frontier>,
    frontier_moved: &'a Condvar,
    only_on_panic: bool,
}

impl Drop for CancelOnDrop<'_> {
    fn drop(&mut self) {
        if self.only_on_panic && !std::thread::panicking() {
            return;
        }
        // Recover from poisoning: this runs while a panic may already be
        // unwinding, and its whole job is to unblock the join that follows.
        let mut state = match self.frontier.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.cancelled = true;
        drop(state);
        self.frontier_moved.notify_all();
    }
}

/// Upper bound on the batch size picked by [`ShardedExecutor::new`].
const MAX_BATCH: usize = 256;

impl ShardedExecutor {
    /// Create an executor.  `workers == 0` means "one worker per available
    /// core"; any other value is used as-is.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        };
        ShardedExecutor {
            workers,
            batch_size: 0,
        }
    }

    /// Override the automatic batch size (values are clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The batch size used for `n` items.
    ///
    /// Aims for ~8 batches per worker so stragglers rebalance, bounded by
    /// [`MAX_BATCH`] so the result channel never holds huge payloads.
    pub fn batch_size(&self, n: usize) -> usize {
        if self.batch_size > 0 {
            return self.batch_size;
        }
        (n / (self.workers * 8).max(1)).clamp(1, MAX_BATCH)
    }

    /// Apply `work` to every item, returning outputs in input order.
    ///
    /// The output is identical to `items.iter().map(work).collect()` for any
    /// worker count, provided `work` is a pure function of its argument.
    pub fn run<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        self.run_streaming(items, work, |value| out.push(value));
        out
    }

    /// Apply `work` to every item, delivering outputs to `sink` *in input
    /// order* without ever materialising the full result set.
    ///
    /// This is the spill path campaign persistence is built on: workers hand
    /// finished batches to the calling thread over a **bounded** channel, so
    /// when the sink (e.g. a segment writer flushing to disk) falls behind,
    /// workers block instead of piling results up in RAM.  The sink runs on
    /// the calling thread; a small reorder buffer holds batches that finish
    /// ahead of their turn.
    ///
    /// Calling `sink` for each output of `items.iter().map(work)` in order is
    /// the exact sequential semantics; only the scheduling differs.
    pub fn run_streaming<I, T, F, S>(&self, items: &[I], work: F, sink: S)
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
        S: FnMut(T),
    {
        self.run_streaming_observed(items, work, sink, &ExecutorStats::new(self.workers));
    }

    /// [`ShardedExecutor::run_streaming`] with scheduling telemetry: each
    /// worker records claimed batches and processed items into its own
    /// [`ExecutorStats`] shard, and the collector records the reorder
    /// buffer's high-water mark.  Output semantics are identical.
    pub fn run_streaming_observed<I, T, F, S>(
        &self,
        items: &[I],
        work: F,
        mut sink: S,
        stats: &ExecutorStats,
    ) where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
        S: FnMut(T),
    {
        // An explicit batch size signals coarse-grained items (e.g. one whole
        // vantage-point scan each); only auto-batched work gets the inline
        // shortcut for small inputs.
        let run_inline =
            self.workers <= 1 || (self.batch_size == 0 && items.len() < SEQUENTIAL_CUTOFF);
        if run_inline {
            let shard = stats.shard(0);
            if !items.is_empty() {
                shard.counter("executor.batches").inc();
            }
            shard.counter("executor.items").add(items.len() as u64);
            for item in items {
                sink(work(item));
            }
            return;
        }

        let batch = self.batch_size(items.len());
        let shard_count = items.len().div_ceil(batch);
        // Queue every shard up front; workers drain the queue batch-by-batch,
        // so a worker stuck on an expensive shard simply claims fewer shards.
        let (shard_tx, shard_rx) = channel::unbounded::<(usize, usize, usize)>();
        for shard in 0..shard_count {
            let start = shard * batch;
            let end = (start + batch).min(items.len());
            // lint: allow(panic-policy) unbounded send with the receiver alive in scope cannot fail
            shard_tx.send((shard, start, end)).expect("queue shards");
        }
        drop(shard_tx);

        // Two brakes keep memory bounded at O(window × batch):
        //
        // * the result channel is bounded, so a slow *sink* back-pressures
        //   the workers instead of letting finished batches queue up;
        // * workers may only compute shards within `window` of the flush
        //   frontier, so a slow *shard* (one expensive batch while its
        //   successors race ahead) cannot make the reorder buffer hoard the
        //   whole result set.  The frontier shard itself is always within
        //   the window, so the throttle can never deadlock.
        let window = self.workers * 4;
        let (result_tx, result_rx) = channel::bounded::<(usize, Vec<T>)>(self.workers * 2);
        let frontier: Mutex<Frontier> = Mutex::new(Frontier {
            flushed: 0,
            cancelled: false,
        });
        let frontier_moved = std::sync::Condvar::new();
        let work = &work;
        std::thread::scope(|scope| {
            for worker in 0..self.workers.min(shard_count) {
                let shard_rx = shard_rx.clone();
                let result_tx = result_tx.clone();
                let frontier = &frontier;
                let frontier_moved = &frontier_moved;
                let worker_shard = stats.shard(worker);
                scope.spawn(move || {
                    let batches = worker_shard.counter("executor.batches");
                    let items_done = worker_shard.counter("executor.items");
                    // If `work` panics, this shard never reaches the
                    // collector and the frontier stalls; cancel the run so
                    // the other workers exit and the panic can propagate.
                    let _cancel = CancelOnDrop {
                        frontier,
                        frontier_moved,
                        only_on_panic: true,
                    };
                    while let Ok((shard, start, end)) = shard_rx.recv() {
                        {
                            // A poisoned frontier means another worker already
                            // panicked; re-panicking here merely joins the
                            // teardown the cancellation guard is propagating.
                            // lint: allow(panic-policy) poisoning propagation, not a new abort
                            let mut state = frontier.lock().expect("frontier lock poisoned");
                            while !state.cancelled && shard >= state.flushed + window {
                                // lint: allow(panic-policy) poisoning propagation, not a new abort
                                state = frontier_moved.wait(state).expect("frontier lock poisoned");
                            }
                            if state.cancelled {
                                return;
                            }
                        }
                        let outputs: Vec<T> = items[start..end].iter().map(work).collect();
                        batches.inc();
                        items_done.add(outputs.len() as u64);
                        if result_tx.send((shard, outputs)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Both bindings below are owned by this closure so that a panic
            // in the sink drops them *before* the scope joins the workers:
            // dropping the receiver errors out senders blocked on the full
            // channel, and the guard wakes workers parked on the throttle —
            // the panic then propagates instead of hanging the join.
            let result_rx = result_rx;
            drop(result_tx);
            let _cancel = CancelOnDrop {
                frontier: &frontier,
                frontier_moved: &frontier_moved,
                only_on_panic: false,
            };

            // Flush batches to the sink in shard order: completion order is
            // scheduling noise.  Out-of-order arrivals wait in `pending`,
            // which the claim throttle above caps at `window` entries.
            let reorder_peak = stats
                .shard(self.workers)
                .gauge("executor.reorder_depth_peak");
            let mut pending: BTreeMap<usize, Vec<T>> = BTreeMap::new();
            let mut next_shard = 0usize;
            for (shard, outputs) in result_rx.iter() {
                pending.insert(shard, outputs);
                reorder_peak.record_max(pending.len() as u64);
                if pending.contains_key(&next_shard) {
                    while let Some(outputs) = pending.remove(&next_shard) {
                        for value in outputs {
                            sink(value);
                        }
                        next_shard += 1;
                    }
                    // lint: allow(panic-policy) poisoning propagation, not a new abort
                    frontier.lock().expect("frontier lock poisoned").flushed = next_shard;
                    frontier_moved.notify_all();
                }
            }
            // On the normal path every shard has flushed; after a worker
            // panic the buffer may legitimately hold orphans — the scope
            // join below re-raises that panic.
            debug_assert!(
                pending.is_empty() || frontier.lock().map(|s| s.cancelled).unwrap_or(true),
                "every shard flushes in order"
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        assert!(ShardedExecutor::new(0).workers() >= 1);
        assert_eq!(ShardedExecutor::new(3).workers(), 3);
    }

    #[test]
    fn output_order_matches_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1_000).rev().collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 4, 8, 16] {
            let got = ShardedExecutor::new(workers).run(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn small_inputs_run_inline_without_threads() {
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF - 1).collect();
        let calls = AtomicUsize::new(0);
        let got = ShardedExecutor::new(8).run(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(got, items);
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let items: Vec<usize> = (0..10_000).collect();
        let calls = AtomicUsize::new(0);
        let got = ShardedExecutor::new(7)
            .with_batch_size(13)
            .run(&items, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(got, items);
    }

    #[test]
    fn streaming_delivers_in_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..5_000).rev().collect();
        let expected: Vec<u64> = items.iter().map(|&x| x ^ 0xa5).collect();
        for workers in [1, 2, 4, 8] {
            let mut got = Vec::new();
            ShardedExecutor::new(workers).run_streaming(&items, |&x| x ^ 0xa5, |v| got.push(v));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn a_panicking_work_closure_propagates_instead_of_deadlocking() {
        // A worker that dies mid-shard never sends its result; the frontier
        // would stall there and park every other worker on the throttle.
        // The cancellation guard must break that cycle so the panic reaches
        // the caller (regression test: this used to hang forever).
        let items: Vec<usize> = (0..100_000).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ShardedExecutor::new(4).with_batch_size(10).run_streaming(
                &items,
                |&x| {
                    assert!(x != 500, "work gives up");
                    x
                },
                |_| {},
            );
        }));
        assert!(result.is_err(), "the work panic must propagate");
    }

    #[test]
    fn a_panicking_sink_propagates_instead_of_hanging_the_join() {
        // The sink panics while workers are still producing; the run must
        // end in that panic (observable via catch_unwind), not in a hang on
        // the scope join with workers parked on the throttle or the full
        // result channel.
        let items: Vec<usize> = (0..10_000).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut seen = 0usize;
            ShardedExecutor::new(4).with_batch_size(8).run_streaming(
                &items,
                |&x| x,
                |_| {
                    seen += 1;
                    assert!(seen <= 64, "sink gives up");
                },
            );
        }));
        assert!(result.is_err(), "the sink panic must propagate");
    }

    #[test]
    fn streaming_bounds_the_reorder_buffer_when_one_shard_is_slow() {
        // Shard 0 sleeps while its successors race ahead: the claim throttle
        // must cap how far ahead workers compute (bounded reorder buffer)
        // without ever deadlocking the shard the flush frontier waits on.
        let items: Vec<usize> = (0..4_000).collect();
        let executor = ShardedExecutor::new(4).with_batch_size(10);
        let window_items = 4 * 4 * 10; // workers × window factor × batch
        let computed_ahead = AtomicUsize::new(0);
        let flushed = AtomicUsize::new(0);
        let mut got = Vec::new();
        executor.run_streaming(
            &items,
            |&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                let lead = x.saturating_sub(flushed.load(Ordering::Relaxed));
                computed_ahead.fetch_max(lead, Ordering::Relaxed);
                x
            },
            |v| {
                flushed.store(v + 1, Ordering::Relaxed);
                got.push(v);
            },
        );
        assert_eq!(got, items);
        // The lead can exceed the window by in-flight batches, but must stay
        // far below "the rest of the input raced ahead".
        let max_lead = computed_ahead.load(Ordering::Relaxed);
        assert!(
            max_lead <= window_items + 4 * 2 * 10,
            "reorder window not enforced: lead {max_lead}"
        );
    }

    #[test]
    fn streaming_backpressures_a_slow_sink_without_losing_order() {
        let items: Vec<usize> = (0..2_000).collect();
        let mut got = Vec::new();
        ShardedExecutor::new(4).with_batch_size(7).run_streaming(
            &items,
            |&x| x,
            |v| {
                if v % 512 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                got.push(v);
            },
        );
        assert_eq!(got, items);
    }

    #[test]
    fn executor_stats_account_for_every_item_at_any_worker_count() {
        let items: Vec<usize> = (0..2_000).collect();
        for workers in [1, 2, 4, 8] {
            let stats = ExecutorStats::new(workers);
            let mut got = Vec::new();
            ShardedExecutor::new(workers).run_streaming_observed(
                &items,
                |&x| x,
                |v| got.push(v),
                &stats,
            );
            assert_eq!(got, items);
            let merged = stats.merged();
            assert_eq!(
                merged.counter("executor.items"),
                Some(items.len() as u64),
                "workers={workers}"
            );
            assert!(merged.counter("executor.batches").unwrap_or(0) >= 1);
            assert_eq!(merged.gauge("executor.workers"), Some(workers as u64));
        }
    }

    #[test]
    fn automatic_batch_size_is_bounded() {
        let ex = ShardedExecutor::new(4);
        assert_eq!(ex.batch_size(0), 1);
        assert!(ex.batch_size(100) >= 1);
        assert!(ex.batch_size(10_000_000) <= MAX_BATCH);
        assert_eq!(ex.with_batch_size(5).batch_size(10_000), 5);
    }
}
