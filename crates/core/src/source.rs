//! Streaming snapshot sources: the report builders' view of a snapshot.
//!
//! Tables 1–7 and Figures 3–8 never need a whole snapshot in memory at once —
//! each builder needs (a) the per-domain join with the universe's DNS data
//! and (b) one or two small per-host attributes (a trace verdict, a server
//! family, a TCP category).  [`SnapshotSource`] captures exactly that: a
//! snapshot's identity plus a way to *stream* its measurements in host-id
//! order.  The in-memory [`SnapshotMeasurement`] implements it trivially;
//! `qem-store`'s segment reader implements it by decoding one segment at a
//! time, which is how store-backed reports run without ever materialising a
//! full campaign.
//!
//! The contract that makes store-backed and in-memory reports byte-identical
//! is the same one the sharded executor relies on: measurements are streamed
//! in ascending host-id order, and every consumer aggregates into
//! order-insensitive structures keyed by domain index, host id or class.

use crate::campaign::SnapshotMeasurement;
use crate::observation::{DomainRecord, EcnClass, HostMeasurement, MirrorUse};
use crate::vantage::VantagePoint;
use qem_web::{SnapshotDate, Universe};
use std::collections::BTreeMap;

/// A source of host measurements for one snapshot (one vantage point, one
/// address family, one date).
pub trait SnapshotSource {
    /// Snapshot date.
    fn date(&self) -> SnapshotDate;

    /// Whether this snapshot probed IPv6.
    fn ipv6(&self) -> bool;

    /// The vantage point the snapshot was taken from.
    fn vantage(&self) -> &VantagePoint;

    /// Stream every measurement in ascending host-id order.
    fn for_each_host(&self, f: &mut dyn FnMut(&HostMeasurement));

    /// Number of hosts measured.
    fn host_count(&self) -> usize {
        let mut n = 0;
        self.for_each_host(&mut |_| n += 1);
        n
    }

    /// Number of hosts reachable via QUIC.
    fn quic_host_count(&self) -> usize {
        let mut n = 0;
        self.for_each_host(&mut |m| {
            if m.quic_reachable {
                n += 1;
            }
        });
        n
    }

    /// Build per-domain records by joining the universe's DNS data with the
    /// per-host measurements — the paper's per-domain vs per-IP distinction.
    ///
    /// **Cost:** one streaming pass over the measurements plus one pass over
    /// `universe.domains`, allocating the full `Vec<DomainRecord>` each call.
    /// Builders that need the join repeatedly should compute it once via
    /// [`JoinedSnapshot`] instead of re-joining per table.
    fn domain_records(&self, universe: &Universe) -> Vec<DomainRecord> {
        // One pass to pull out the three per-host attributes the join needs;
        // the full reports (with their packet counters and traces) can be
        // dropped as soon as they have been summarised.
        let mut summaries: BTreeMap<usize, (bool, MirrorUse, Option<EcnClass>)> = BTreeMap::new();
        self.for_each_host(&mut |m| {
            summaries.insert(m.host_id, (m.quic_reachable, m.mirror_use(), m.ecn_class()));
        });
        let ipv6 = self.ipv6();
        universe
            .domains
            .iter()
            .enumerate()
            .map(|(idx, domain)| {
                let host_id = domain
                    .host
                    .filter(|&h| universe.hosts[h].addr(ipv6).is_some());
                let summary = host_id.and_then(|h| summaries.get(&h));
                let quic = summary.map(|s| s.0).unwrap_or(false);
                let mirror_use = if quic {
                    summary.map(|s| s.1).unwrap_or_default()
                } else {
                    MirrorUse::default()
                };
                let class = if quic {
                    summary.and_then(|s| s.2)
                } else {
                    None
                };
                DomainRecord {
                    domain_idx: idx,
                    resolved: host_id.is_some(),
                    host_id,
                    quic,
                    mirror_use,
                    class,
                }
            })
            .collect()
    }
}

impl SnapshotSource for SnapshotMeasurement {
    fn date(&self) -> SnapshotDate {
        self.date
    }

    fn ipv6(&self) -> bool {
        self.ipv6
    }

    fn vantage(&self) -> &VantagePoint {
        &self.vantage
    }

    fn for_each_host(&self, f: &mut dyn FnMut(&HostMeasurement)) {
        // `hosts` is a BTreeMap, so iteration is already in ascending
        // host-id order — the order the contract requires.
        for m in self.hosts.values() {
            f(m);
        }
    }

    fn host_count(&self) -> usize {
        self.hosts.len()
    }

    fn quic_host_count(&self) -> usize {
        SnapshotMeasurement::quic_host_count(self)
    }

    fn domain_records(&self, universe: &Universe) -> Vec<DomainRecord> {
        // The in-memory snapshot has random access; skip the summary pass.
        SnapshotMeasurement::domain_records(self, universe)
    }
}

/// A snapshot paired with its domain join, computed **once**.
///
/// Every table and figure builder starts from [`SnapshotSource::domain_records`];
/// rendering the full report set from a plain snapshot therefore repeats the
/// O(domains) join up to nine times.  `JoinedSnapshot` performs the join at
/// construction and serves cheap copies afterwards — see the
/// `domain_records_memoization` micro-benchmark for the measured win.
pub struct JoinedSnapshot<'a, S: SnapshotSource> {
    snapshot: &'a S,
    records: Vec<DomainRecord>,
}

impl<'a, S: SnapshotSource> JoinedSnapshot<'a, S> {
    /// Join `snapshot` against `universe` once.
    pub fn new(universe: &Universe, snapshot: &'a S) -> Self {
        JoinedSnapshot {
            records: snapshot.domain_records(universe),
            snapshot,
        }
    }

    /// The cached per-domain records, without copying.
    pub fn records(&self) -> &[DomainRecord] {
        &self.records
    }
}

impl<S: SnapshotSource> SnapshotSource for JoinedSnapshot<'_, S> {
    fn date(&self) -> SnapshotDate {
        self.snapshot.date()
    }

    fn ipv6(&self) -> bool {
        self.snapshot.ipv6()
    }

    fn vantage(&self) -> &VantagePoint {
        self.snapshot.vantage()
    }

    fn for_each_host(&self, f: &mut dyn FnMut(&HostMeasurement)) {
        self.snapshot.for_each_host(f);
    }

    fn host_count(&self) -> usize {
        self.snapshot.host_count()
    }

    fn quic_host_count(&self) -> usize {
        self.snapshot.quic_host_count()
    }

    fn domain_records(&self, _universe: &Universe) -> Vec<DomainRecord> {
        // `DomainRecord` is a flat value type; cloning the cached join is a
        // memcpy, not a re-join.
        self.records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignOptions};
    use qem_web::UniverseConfig;

    #[test]
    fn streaming_join_matches_random_access_join() {
        let universe = Universe::generate(&UniverseConfig::tiny());
        let result = Campaign::new(&universe).run_main(&CampaignOptions::paper_default(), false);
        // Route the default (streaming) implementation through a thin wrapper
        // so it cannot fall back to the specialised SnapshotMeasurement impl.
        struct Stream<'a>(&'a SnapshotMeasurement);
        impl SnapshotSource for Stream<'_> {
            fn date(&self) -> SnapshotDate {
                self.0.date
            }
            fn ipv6(&self) -> bool {
                self.0.ipv6
            }
            fn vantage(&self) -> &VantagePoint {
                &self.0.vantage
            }
            fn for_each_host(&self, f: &mut dyn FnMut(&HostMeasurement)) {
                self.0.for_each_host(f);
            }
        }
        let streamed = Stream(&result.v4).domain_records(&universe);
        assert_eq!(streamed, result.v4.domain_records(&universe));
        assert_eq!(
            Stream(&result.v4).quic_host_count(),
            result.v4.quic_host_count()
        );
        assert_eq!(Stream(&result.v4).host_count(), result.v4.hosts.len());
    }

    #[test]
    fn joined_snapshot_serves_the_same_records() {
        let universe = Universe::generate(&UniverseConfig::tiny());
        let result = Campaign::new(&universe).run_main(&CampaignOptions::paper_default(), false);
        let joined = JoinedSnapshot::new(&universe, &result.v4);
        assert_eq!(
            joined.records(),
            result.v4.domain_records(&universe).as_slice()
        );
        assert_eq!(
            joined.domain_records(&universe),
            result.v4.domain_records(&universe)
        );
    }
}
