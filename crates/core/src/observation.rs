//! Observation records and their classification into the paper's categories.

use qem_quic::ecn::{EcnValidationFailure, EcnValidationState};
use qem_quic::ClientReport;
use qem_tcp::TcpReport;
use qem_tracebox::TraceAnalysis;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ECN validation classes of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EcnClass {
    /// The host never mirrored any ECN counter.
    NoMirroring,
    /// Counters mirrored but fewer than sent (LiteSpeed bug class).
    Undercount,
    /// ECT(1) mirrored although ECT(0) was sent (stack mix-up or re-marking).
    RemarkEct1,
    /// Every packet reported CE.
    AllCe,
    /// Validation succeeded: the path is ECN-capable.
    Capable,
    /// Any other validation failure (non-monotonic counters, …).
    Other,
}

impl EcnClass {
    /// Classify a finished client report.  Returns `None` when the
    /// connection never got far enough to judge ECN (handshake failure).
    pub fn classify(report: &ClientReport) -> Option<EcnClass> {
        if !report.connected {
            return None;
        }
        if !report.peer_mirrored {
            return Some(EcnClass::NoMirroring);
        }
        match report.ecn_state {
            EcnValidationState::Capable => Some(EcnClass::Capable),
            EcnValidationState::Failed(EcnValidationFailure::Undercount) => {
                Some(EcnClass::Undercount)
            }
            EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint) => {
                Some(EcnClass::RemarkEct1)
            }
            EcnValidationState::Failed(EcnValidationFailure::AllCe) => Some(EcnClass::AllCe),
            EcnValidationState::Failed(EcnValidationFailure::NoMirroring) => {
                Some(EcnClass::NoMirroring)
            }
            EcnValidationState::Failed(_) => Some(EcnClass::Other),
            // Mirrored something but validation never concluded (e.g. too few
            // ACKs before the connection ended): treat conservatively as not
            // capable.
            EcnValidationState::Testing | EcnValidationState::Unknown => Some(EcnClass::Other),
        }
    }

    /// Label used in the rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            EcnClass::NoMirroring => "No Mirroring",
            EcnClass::Undercount => "Undercount",
            EcnClass::RemarkEct1 => "Re-Marking ECT(1)",
            EcnClass::AllCe => "All CE",
            EcnClass::Capable => "Capable",
            EcnClass::Other => "Other",
        }
    }
}

impl fmt::Display for EcnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's "Mirroring" / "Use" terminology (§2.2.2) for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MirrorUse {
    /// The host mirrored ECN counters.
    pub mirroring: bool,
    /// The host set ECN codepoints on its own packets.
    pub uses_ecn: bool,
}

/// Everything measured about one host from one vantage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMeasurement {
    /// Host index in the universe.
    pub host_id: usize,
    /// Whether an HTTP/3-over-QUIC exchange succeeded.
    pub quic_reachable: bool,
    /// The QUIC client report, if a connection was attempted.
    pub quic: Option<ClientReport>,
    /// The TCP report, if a connection was attempted.
    pub tcp: Option<TcpReport>,
    /// Tracebox analysis, if the host was selected for tracing.
    pub trace: Option<TraceAnalysis>,
}

impl HostMeasurement {
    /// Mirroring / use summary for the QUIC measurement.
    pub fn mirror_use(&self) -> MirrorUse {
        match &self.quic {
            Some(report) if report.connected => MirrorUse {
                mirroring: report.peer_mirrored,
                uses_ecn: report.server_used_ecn,
            },
            _ => MirrorUse::default(),
        }
    }

    /// ECN validation class, if the host was reachable via QUIC.
    pub fn ecn_class(&self) -> Option<EcnClass> {
        self.quic.as_ref().and_then(EcnClass::classify)
    }

    /// The normalised HTTP server family reported by the host.
    pub fn server_family(&self) -> Option<String> {
        self.quic
            .as_ref()
            .and_then(|r| r.response.as_ref())
            .and_then(|resp| resp.server_family())
    }

    /// The server's transport-parameter fingerprint.
    pub fn fingerprint(&self) -> Option<u64> {
        self.quic.as_ref().and_then(|r| r.transport_fingerprint)
    }
}

/// A per-domain view of a snapshot: which host served it and what was
/// measured there.  This is what the report builders consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainRecord {
    /// Index of the domain in the universe.
    pub domain_idx: usize,
    /// Whether the domain resolved for the probed address family.
    pub resolved: bool,
    /// The host index, if resolved.
    pub host_id: Option<usize>,
    /// Whether the domain was reachable via QUIC.
    pub quic: bool,
    /// Mirroring / use summary.
    pub mirror_use: MirrorUse,
    /// Validation class, if reachable via QUIC.
    pub class: Option<EcnClass>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_packet::ecn::EcnCounts;
    use qem_packet::quic::QuicVersion;

    fn report(connected: bool, mirrored: bool, state: EcnValidationState) -> ClientReport {
        ClientReport {
            connected,
            response: None,
            version: QuicVersion::V1,
            server_transport_params: None,
            transport_fingerprint: None,
            ecn_state: state,
            peer_mirrored: mirrored,
            mirrored_counts: EcnCounts::ZERO,
            sent_counts: EcnCounts::ZERO,
            received_ecn: EcnCounts::ZERO,
            server_used_ecn: false,
            error: None,
        }
    }

    #[test]
    fn unconnected_reports_are_not_classified() {
        let r = report(false, false, EcnValidationState::Testing);
        assert_eq!(EcnClass::classify(&r), None);
    }

    #[test]
    fn classes_map_from_validation_outcomes() {
        assert_eq!(
            EcnClass::classify(&report(
                true,
                false,
                EcnValidationState::Failed(EcnValidationFailure::NoMirroring)
            )),
            Some(EcnClass::NoMirroring)
        );
        assert_eq!(
            EcnClass::classify(&report(true, true, EcnValidationState::Capable)),
            Some(EcnClass::Capable)
        );
        assert_eq!(
            EcnClass::classify(&report(
                true,
                true,
                EcnValidationState::Failed(EcnValidationFailure::Undercount)
            )),
            Some(EcnClass::Undercount)
        );
        assert_eq!(
            EcnClass::classify(&report(
                true,
                true,
                EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint)
            )),
            Some(EcnClass::RemarkEct1)
        );
        assert_eq!(
            EcnClass::classify(&report(
                true,
                true,
                EcnValidationState::Failed(EcnValidationFailure::AllCe)
            )),
            Some(EcnClass::AllCe)
        );
        assert_eq!(
            EcnClass::classify(&report(
                true,
                true,
                EcnValidationState::Failed(EcnValidationFailure::NonMonotonic)
            )),
            Some(EcnClass::Other)
        );
    }

    #[test]
    fn mirroring_without_final_verdict_is_other() {
        let r = report(true, true, EcnValidationState::Unknown);
        assert_eq!(EcnClass::classify(&r), Some(EcnClass::Other));
    }

    #[test]
    fn labels_match_table_5() {
        assert_eq!(EcnClass::RemarkEct1.label(), "Re-Marking ECT(1)");
        assert_eq!(EcnClass::NoMirroring.to_string(), "No Mirroring");
    }
}
