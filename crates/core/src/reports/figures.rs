//! Builders for Figures 3–8 (Figure 1 is the validation state machine itself,
//! Figure 2 the pipeline diagram; neither carries data).
//!
//! Like the table builders, every figure builder is generic over
//! [`SnapshotSource`] and gathers the per-host attributes it needs (server
//! family, QUIC version, TCP category) in one streaming pass, so the same
//! code renders a figure from a live campaign or from a `qem-store`
//! directory with byte-identical output.

use super::fmt_count;
use crate::observation::EcnClass;
use crate::source::SnapshotSource;
use crate::vantage::VantagePoint;
use qem_web::{SnapshotDate, Universe};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One month of Figure 3.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3Point {
    /// Snapshot date.
    pub date: SnapshotDate,
    /// Total QUIC-reachable com/net/org domains (the cyan line).
    pub total_quic_domains: u64,
    /// Mirroring domains by web-server family (the stacked bars):
    /// "LiteSpeed", "Pepyaka", "Other", "Unknown".
    pub mirroring_by_family: BTreeMap<String, u64>,
}

impl Figure3Point {
    /// Total mirroring domains in this month.
    pub fn mirroring_total(&self) -> u64 {
        self.mirroring_by_family.values().sum()
    }
}

/// Figure 3: ECN mirroring over time by web-server family.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3 {
    /// One point per snapshot, in chronological order.
    pub points: Vec<Figure3Point>,
}

/// Normalise a server family string into the Figure 3 buckets.
fn family_bucket(family: Option<&str>) -> String {
    match family {
        Some(f) if f.starts_with("LiteSpeed") => "LiteSpeed".to_string(),
        Some(f) if f.starts_with("Pepyaka") => "Pepyaka".to_string(),
        Some(_) => "Other".to_string(),
        None => "Unknown".to_string(),
    }
}

/// Build Figure 3 from a longitudinal series of IPv4 snapshots.
pub fn figure3<S: SnapshotSource>(universe: &Universe, snapshots: &[S]) -> Figure3 {
    let mut points = Vec::new();
    for snapshot in snapshots {
        // One streaming pass: remember each host's (server family,
        // fingerprint) pair, and build the fingerprint → family map used to
        // identify stacks without a server header (§5.3).
        let mut fingerprint_family: BTreeMap<u64, String> = BTreeMap::new();
        let mut host_family: BTreeMap<usize, (Option<String>, Option<u64>)> = BTreeMap::new();
        snapshot.for_each_host(&mut |m| {
            let family = m.server_family();
            let fp = m.fingerprint();
            if let (Some(family), Some(fp)) = (family.clone(), fp) {
                fingerprint_family.insert(fp, family);
            }
            host_family.insert(m.host_id, (family, fp));
        });
        let records = snapshot.domain_records(universe);
        let mut by_family: BTreeMap<String, u64> = BTreeMap::new();
        let mut total_quic = 0u64;
        for record in &records {
            if !universe.domains[record.domain_idx].lists.cno || !record.quic {
                continue;
            }
            total_quic += 1;
            if !record.mirror_use.mirroring {
                continue;
            }
            let family =
                record
                    .host_id
                    .and_then(|h| host_family.get(&h))
                    .and_then(|(family, fp)| {
                        family
                            .clone()
                            .or_else(|| fp.and_then(|fp| fingerprint_family.get(&fp).cloned()))
                    });
            *by_family
                .entry(family_bucket(family.as_deref()))
                .or_default() += 1;
        }
        points.push(Figure3Point {
            date: snapshot.date(),
            total_quic_domains: total_quic,
            mirroring_by_family: by_family,
        });
    }
    Figure3 { points }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: HTTP/3 servers with observed ECN mirroring over time (com/net/org, IPv4)\n\
             {:<8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "Month", "Total QUIC", "Mirroring", "LiteSpeed", "Pepyaka", "Other", "Unknown"
        )?;
        for point in &self.points {
            let get = |k: &str| point.mirroring_by_family.get(k).copied().unwrap_or(0);
            writeln!(
                f,
                "{:<8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
                point.date.to_string(),
                fmt_count(point.total_quic_domains),
                fmt_count(point.mirroring_total()),
                fmt_count(get("LiteSpeed")),
                fmt_count(get("Pepyaka")),
                fmt_count(get("Other")),
                fmt_count(get("Unknown")),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4 / Figure 8
// ---------------------------------------------------------------------------

/// Per-domain state used in the Figure 4 alluvial plot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum DomainState {
    /// Not reachable via QUIC at that date.
    Unavailable,
    /// Reachable, not mirroring; the string is the QUIC version label ("v1", "d27", …).
    NoMirroring(String),
    /// Reachable and mirroring; the string is the QUIC version label.
    Mirroring(String),
}

impl fmt::Display for DomainState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainState::Unavailable => write!(f, "Unavailable"),
            DomainState::NoMirroring(v) => write!(f, "No Mirroring ({v})"),
            DomainState::Mirroring(v) => write!(f, "Mirroring ({v})"),
        }
    }
}

/// Figure 4 / Figure 8: per-domain transitions across snapshots.
#[derive(Debug, Clone, Serialize)]
pub struct Figure4 {
    /// The snapshot dates, in order.
    pub dates: Vec<SnapshotDate>,
    /// State counts per snapshot.
    pub states: Vec<BTreeMap<DomainState, u64>>,
    /// Transition counts between consecutive snapshots.
    pub transitions: Vec<BTreeMap<(DomainState, DomainState), u64>>,
}

/// Build Figure 4 from (typically three) longitudinal snapshots.
pub fn figure4<S: SnapshotSource>(universe: &Universe, snapshots: &[S]) -> Figure4 {
    let mut per_domain_states: Vec<Vec<DomainState>> = Vec::new();
    for snapshot in snapshots {
        // Streaming pass: the only per-host attribute the alluvial needs is
        // the QUIC version label.
        let mut versions: BTreeMap<usize, String> = BTreeMap::new();
        snapshot.for_each_host(&mut |m| {
            if let Some(report) = &m.quic {
                versions.insert(m.host_id, report.version.label());
            }
        });
        let records = snapshot.domain_records(universe);
        let states: Vec<DomainState> = records
            .iter()
            .map(|record| {
                if !record.quic {
                    return DomainState::Unavailable;
                }
                let version = record
                    .host_id
                    .and_then(|h| versions.get(&h).cloned())
                    .unwrap_or_else(|| "v1".to_string());
                if record.mirror_use.mirroring {
                    DomainState::Mirroring(version)
                } else {
                    DomainState::NoMirroring(version)
                }
            })
            .collect();
        per_domain_states.push(states);
    }

    // Like the paper's alluvial plots, only domains that are part of the
    // QUIC web at some point in the window are shown; the never-QUIC mass of
    // the zone files would otherwise dwarf every flow.
    let ever_quic: Vec<bool> = (0..universe.domains.len())
        .map(|idx| {
            per_domain_states
                .iter()
                .any(|states| states[idx] != DomainState::Unavailable)
        })
        .collect();
    let cno_mask: Vec<bool> = universe
        .domains
        .iter()
        .enumerate()
        .map(|(idx, d)| d.lists.cno && ever_quic[idx])
        .collect();
    let mut states_counts = Vec::new();
    for states in &per_domain_states {
        let mut counts: BTreeMap<DomainState, u64> = BTreeMap::new();
        for (idx, state) in states.iter().enumerate() {
            if cno_mask[idx] {
                *counts.entry(state.clone()).or_default() += 1;
            }
        }
        states_counts.push(counts);
    }
    let mut transitions = Vec::new();
    for window in per_domain_states.windows(2) {
        let mut counts: BTreeMap<(DomainState, DomainState), u64> = BTreeMap::new();
        for idx in 0..window[0].len() {
            if cno_mask[idx] {
                *counts
                    .entry((window[0][idx].clone(), window[1][idx].clone()))
                    .or_default() += 1;
            }
        }
        transitions.push(counts);
    }
    Figure4 {
        dates: snapshots.iter().map(|s| s.date()).collect(),
        states: states_counts,
        transitions,
    }
}

impl Figure4 {
    /// Number of domains in a given state at snapshot index `at`.
    pub fn count(&self, at: usize, state: &DomainState) -> u64 {
        self.states
            .get(at)
            .and_then(|m| m.get(state))
            .copied()
            .unwrap_or(0)
    }

    /// Number of mirroring domains (any version) at snapshot index `at`.
    pub fn mirroring_total(&self, at: usize) -> u64 {
        self.states
            .get(at)
            .map(|m| {
                m.iter()
                    .filter(|(s, _)| matches!(s, DomainState::Mirroring(_)))
                    .map(|(_, c)| c)
                    .sum()
            })
            .unwrap_or(0)
    }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4/8: QUIC ECN support transitions over time (com/net/org)"
        )?;
        for (i, date) in self.dates.iter().enumerate() {
            writeln!(f, "  {date}:")?;
            for (state, count) in &self.states[i] {
                writeln!(f, "    {:<22} {:>12}", state.to_string(), fmt_count(*count))?;
            }
        }
        for (i, transition) in self.transitions.iter().enumerate() {
            writeln!(
                f,
                "  {} -> {} (flows >= 1% of domains):",
                self.dates[i],
                self.dates[i + 1]
            )?;
            let total: u64 = transition.values().sum();
            let mut flows: Vec<_> = transition.iter().collect();
            flows.sort_by(|a, b| b.1.cmp(a.1));
            for ((from, to), count) in flows {
                if *count * 100 >= total {
                    writeln!(
                        f,
                        "    {:<22} -> {:<22} {:>12}",
                        from.to_string(),
                        to.to_string(),
                        fmt_count(*count)
                    )?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// The four mirroring/use quadrants of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum MirrorUseQuadrant {
    /// Mirrors, does not use.
    MirroringNoUse,
    /// Mirrors and uses.
    MirroringUse,
    /// Neither mirrors nor uses.
    NoMirroringNoUse,
    /// Uses without mirroring.
    NoMirroringUse,
}

impl MirrorUseQuadrant {
    fn of(mirroring: bool, uses: bool) -> Self {
        match (mirroring, uses) {
            (true, false) => MirrorUseQuadrant::MirroringNoUse,
            (true, true) => MirrorUseQuadrant::MirroringUse,
            (false, false) => MirrorUseQuadrant::NoMirroringNoUse,
            (false, true) => MirrorUseQuadrant::NoMirroringUse,
        }
    }

    /// Label as used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            MirrorUseQuadrant::MirroringNoUse => "Mirroring, No Use",
            MirrorUseQuadrant::MirroringUse => "Mirroring, Use",
            MirrorUseQuadrant::NoMirroringNoUse => "No Mirroring, No Use",
            MirrorUseQuadrant::NoMirroringUse => "No Mirroring, Use",
        }
    }
}

/// Figure 5: IPv4 ↔ IPv6 relation of visible ECN support (com/net/org).
#[derive(Debug, Clone, Serialize)]
pub struct Figure5 {
    /// Domain counts per quadrant via IPv4.
    pub v4: BTreeMap<MirrorUseQuadrant, u64>,
    /// Domain counts per quadrant via IPv6.
    pub v6: BTreeMap<MirrorUseQuadrant, u64>,
    /// Domains reachable via IPv4 QUIC but not via IPv6 QUIC.
    pub v4_only: u64,
    /// Cross-tabulation for domains reachable via both.
    pub cross: BTreeMap<(MirrorUseQuadrant, MirrorUseQuadrant), u64>,
}

/// Build Figure 5 by joining the IPv4 and IPv6 snapshots per domain.
pub fn figure5<S4: SnapshotSource + ?Sized, S6: SnapshotSource + ?Sized>(
    universe: &Universe,
    v4: &S4,
    v6: &S6,
) -> Figure5 {
    let records_v4 = v4.domain_records(universe);
    let records_v6 = v6.domain_records(universe);
    let mut fig = Figure5 {
        v4: BTreeMap::new(),
        v6: BTreeMap::new(),
        v4_only: 0,
        cross: BTreeMap::new(),
    };
    for (r4, r6) in records_v4.iter().zip(&records_v6) {
        if !universe.domains[r4.domain_idx].lists.cno {
            continue;
        }
        let q4 = r4
            .quic
            .then(|| MirrorUseQuadrant::of(r4.mirror_use.mirroring, r4.mirror_use.uses_ecn));
        let q6 = r6
            .quic
            .then(|| MirrorUseQuadrant::of(r6.mirror_use.mirroring, r6.mirror_use.uses_ecn));
        if let Some(q) = q4 {
            *fig.v4.entry(q).or_default() += 1;
        }
        if let Some(q) = q6 {
            *fig.v6.entry(q).or_default() += 1;
        }
        match (q4, q6) {
            (Some(a), Some(b)) => *fig.cross.entry((a, b)).or_default() += 1,
            (Some(_), None) => fig.v4_only += 1,
            _ => {}
        }
    }
    fig
}

impl fmt::Display for Figure5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: IPv4 vs IPv6 visible ECN support (com/net/org)"
        )?;
        writeln!(f, "  {:<24} {:>12} {:>12}", "Class", "IPv4", "IPv6")?;
        for quadrant in [
            MirrorUseQuadrant::MirroringNoUse,
            MirrorUseQuadrant::MirroringUse,
            MirrorUseQuadrant::NoMirroringNoUse,
            MirrorUseQuadrant::NoMirroringUse,
        ] {
            writeln!(
                f,
                "  {:<24} {:>12} {:>12}",
                quadrant.label(),
                fmt_count(self.v4.get(&quadrant).copied().unwrap_or(0)),
                fmt_count(self.v6.get(&quadrant).copied().unwrap_or(0)),
            )?;
        }
        writeln!(
            f,
            "  (domains QUIC-reachable via IPv4 only: {})",
            fmt_count(self.v4_only)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// TCP-side categories of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum TcpCategory {
    /// ECN negotiated, CE mirrored, host does not use ECN.
    CeMirrorNoUseNegotiated,
    /// ECN negotiated, CE mirrored, host uses ECN.
    CeMirrorUseNegotiated,
    /// ECN negotiated but CE not mirrored, host does not use ECN.
    NoCeMirrorNoUseNegotiated,
    /// ECN negotiated but CE not mirrored, host uses ECN.
    NoCeMirrorUseNegotiated,
    /// ECN not negotiated.
    NoNegotiation,
}

impl TcpCategory {
    /// Label as in the figure.
    pub fn label(self) -> &'static str {
        match self {
            TcpCategory::CeMirrorNoUseNegotiated => "CE Mirroring, No Use, Negotiation",
            TcpCategory::CeMirrorUseNegotiated => "CE Mirroring, Use, Negotiation",
            TcpCategory::NoCeMirrorNoUseNegotiated => "No CE Mirroring, No Use, Negotiation",
            TcpCategory::NoCeMirrorUseNegotiated => "No CE Mirroring, Use, Negotiation",
            TcpCategory::NoNegotiation => "No Negotiation",
        }
    }
}

/// QUIC-side categories of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum QuicCeCategory {
    /// CE counter mirrored, host does not use ECN.
    CeMirrorNoUse,
    /// CE counter mirrored, host uses ECN.
    CeMirrorUse,
    /// No CE mirroring, no use.
    NoCeMirrorNoUse,
    /// No CE mirroring but the host uses ECN.
    NoCeMirrorUse,
}

impl QuicCeCategory {
    /// Label as in the figure.
    pub fn label(self) -> &'static str {
        match self {
            QuicCeCategory::CeMirrorNoUse => "CE Mirroring, No Use",
            QuicCeCategory::CeMirrorUse => "CE Mirroring, Use",
            QuicCeCategory::NoCeMirrorNoUse => "No CE Mirroring, No Use",
            QuicCeCategory::NoCeMirrorUse => "No CE Mirroring, Use",
        }
    }
}

/// Figure 6: TCP ↔ QUIC CE-mirroring relation (the week-20 CE-probing run).
#[derive(Debug, Clone, Serialize)]
pub struct Figure6 {
    /// Domain counts per TCP category (TCP-reachable c/n/o domains).
    pub tcp: BTreeMap<TcpCategory, u64>,
    /// Domain counts per QUIC category (QUIC-reachable c/n/o domains).
    pub quic: BTreeMap<QuicCeCategory, u64>,
    /// Cross-tabulation for domains measured via both protocols.
    pub cross: BTreeMap<(TcpCategory, QuicCeCategory), u64>,
}

/// Build Figure 6 from the CE-probing snapshot (QUIC and TCP measured in parallel).
pub fn figure6<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> Figure6 {
    // Streaming pass: reduce every host to its (TCP, QUIC) category pair.
    let mut categories: BTreeMap<usize, (Option<TcpCategory>, Option<QuicCeCategory>)> =
        BTreeMap::new();
    snapshot.for_each_host(&mut |m| {
        let tcp_category = m.tcp.as_ref().filter(|t| t.connected).map(|t| {
            if !t.negotiated {
                TcpCategory::NoNegotiation
            } else {
                match (t.ce_mirrored, t.server_used_ecn) {
                    (true, false) => TcpCategory::CeMirrorNoUseNegotiated,
                    (true, true) => TcpCategory::CeMirrorUseNegotiated,
                    (false, false) => TcpCategory::NoCeMirrorNoUseNegotiated,
                    (false, true) => TcpCategory::NoCeMirrorUseNegotiated,
                }
            }
        });
        let quic_category = m.quic.as_ref().filter(|q| q.connected).map(|q| {
            let ce_mirrored = q.mirrored_counts.ce > 0;
            match (ce_mirrored, q.server_used_ecn) {
                (true, false) => QuicCeCategory::CeMirrorNoUse,
                (true, true) => QuicCeCategory::CeMirrorUse,
                (false, false) => QuicCeCategory::NoCeMirrorNoUse,
                (false, true) => QuicCeCategory::NoCeMirrorUse,
            }
        });
        categories.insert(m.host_id, (tcp_category, quic_category));
    });
    let records = snapshot.domain_records(universe);
    let mut fig = Figure6 {
        tcp: BTreeMap::new(),
        quic: BTreeMap::new(),
        cross: BTreeMap::new(),
    };
    for record in &records {
        if !universe.domains[record.domain_idx].lists.cno {
            continue;
        }
        let Some(host) = record.host_id else { continue };
        let Some(&(tcp_category, quic_category)) = categories.get(&host) else {
            continue;
        };
        if let Some(t) = tcp_category {
            *fig.tcp.entry(t).or_default() += 1;
        }
        if let Some(q) = quic_category {
            *fig.quic.entry(q).or_default() += 1;
        }
        if let (Some(t), Some(q)) = (tcp_category, quic_category) {
            *fig.cross.entry((t, q)).or_default() += 1;
        }
    }
    fig
}

impl fmt::Display for Figure6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: TCP vs QUIC visible ECN support with CE probing (com/net/org, IPv4)"
        )?;
        writeln!(f, "  TCP:")?;
        for (category, count) in &self.tcp {
            writeln!(f, "    {:<40} {:>12}", category.label(), fmt_count(*count))?;
        }
        writeln!(f, "  QUIC:")?;
        for (category, count) in &self.quic {
            writeln!(f, "    {:<40} {:>12}", category.label(), fmt_count(*count))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// One vantage point of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7Row {
    /// Vantage point name.
    pub vantage: String,
    /// Platform marker ('M', 'A' or 'V').
    pub marker: char,
    /// Share of (domain-weighted) QUIC domains passing ECN validation, IPv4.
    pub capable_share_v4: f64,
    /// Share for IPv6, if measured.
    pub capable_share_v6: Option<f64>,
    /// Number of hosts probed from this vantage point.
    pub hosts_probed: usize,
}

/// Figure 7: global view on QUIC ECN validation.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7 {
    /// One row per vantage point.
    pub rows: Vec<Figure7Row>,
}

/// Build Figure 7.  Cloud workers probe deduplicated IPs only, so the shares
/// are re-weighted by the main vantage point's domain-to-IP mapping, exactly
/// as the paper does.
pub fn figure7<SM: SnapshotSource, SC: SnapshotSource>(
    universe: &Universe,
    main_v4: &SM,
    cloud: &[(VantagePoint, SC, Option<SC>)],
) -> Figure7 {
    // Domain weight per host, from the main vantage point's IPv4 view.
    let mut weight: BTreeMap<usize, u64> = BTreeMap::new();
    let mut total_weight = 0u64;
    for record in main_v4.domain_records(universe) {
        if !universe.domains[record.domain_idx].lists.cno || !record.quic {
            continue;
        }
        if let Some(host) = record.host_id {
            *weight.entry(host).or_default() += 1;
            total_weight += 1;
        }
    }
    fn share<S: SnapshotSource + ?Sized>(
        snapshot: &S,
        weight: &BTreeMap<usize, u64>,
        total_weight: u64,
    ) -> f64 {
        if total_weight == 0 {
            return 0.0;
        }
        let mut capable = 0u64;
        snapshot.for_each_host(&mut |m| {
            if m.ecn_class() == Some(EcnClass::Capable) {
                capable += weight.get(&m.host_id).copied().unwrap_or(0);
            }
        });
        capable as f64 / total_weight as f64
    }
    let mut rows = Vec::new();
    rows.push(Figure7Row {
        vantage: main_v4.vantage().name.clone(),
        marker: main_v4.vantage().provider.marker(),
        capable_share_v4: share(main_v4, &weight, total_weight),
        capable_share_v6: None,
        hosts_probed: main_v4.host_count(),
    });
    for (vantage, v4, v6) in cloud {
        rows.push(Figure7Row {
            vantage: vantage.name.clone(),
            marker: vantage.provider.marker(),
            capable_share_v4: share(v4, &weight, total_weight),
            capable_share_v6: v6.as_ref().map(|s| share(s, &weight, total_weight)),
            hosts_probed: v4.host_count(),
        });
    }
    Figure7 { rows }
}

impl fmt::Display for Figure7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: domains passing QUIC ECN validation per vantage point\n  {:<24} {:>8} {:>10} {:>10}",
            "Vantage point", "Kind", "IPv4", "IPv6"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<24} {:>8} {:>9.2}% {:>10}",
                row.vantage,
                row.marker,
                row.capable_share_v4 * 100.0,
                row.capable_share_v6
                    .map(|s| format!("{:.2}%", s * 100.0))
                    .unwrap_or_else(|| "-".to_string()),
            )?;
        }
        Ok(())
    }
}
