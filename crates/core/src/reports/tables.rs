//! Builders for Tables 1–7.
//!
//! Every builder is generic over [`SnapshotSource`], so the same code renders
//! a table from a live in-memory campaign or from a `qem-store` directory on
//! disk — and produces byte-identical output either way.  Builders that need
//! per-host attributes beyond the domain join (trace verdicts for Tables 4
//! and 7) collect them in one streaming pass up front instead of random-
//! accessing the snapshot, so a store-backed source never has to hold more
//! than one segment in memory.

use super::{fmt_count, fmt_pct};
use crate::observation::EcnClass;
use crate::source::SnapshotSource;
use qem_tracebox::PathVerdict;
use qem_web::Universe;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::IpAddr;

/// One streaming pass collecting the trace verdict of every traced host —
/// the only per-host attribute Tables 4 and 7 need beyond the domain join.
fn trace_verdicts<S: SnapshotSource + ?Sized>(snapshot: &S) -> BTreeMap<usize, PathVerdict> {
    let mut verdicts = BTreeMap::new();
    snapshot.for_each_host(&mut |m| {
        if let Some(trace) = &m.trace {
            verdicts.insert(m.host_id, trace.verdict);
        }
    });
    verdicts
}

/// Which domain population a row covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scope {
    /// The merged toplists (Alexa, Umbrella, Majestic, Tranco).
    Toplists,
    /// The `.com/.net/.org` zone files.
    Cno,
}

impl Scope {
    fn matches(self, universe: &Universe, domain_idx: usize) -> bool {
        let lists = universe.domains[domain_idx].lists;
        match self {
            Scope::Toplists => lists.toplist(),
            Scope::Cno => lists.cno,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Scope::Toplists => "Toplists",
            Scope::Cno => "com/net/org",
        }
    }
}

fn org_of_host(universe: &Universe, host_id: usize) -> String {
    universe
        .as_org
        .org_of_ip(IpAddr::V4(universe.hosts[host_id].ipv4))
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1 (a scope × unit combination).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Domain population.
    pub scope: &'static str,
    /// "Domains" or "IPs".
    pub unit: &'static str,
    /// Total entries in the population.
    pub total: u64,
    /// Entries that resolved.
    pub resolved: u64,
    /// Entries reachable via QUIC.
    pub quic: u64,
    /// Share of QUIC entries that mirror ECN.
    pub mirroring: f64,
    /// Share of QUIC entries whose host uses ECN itself.
    pub uses: f64,
}

/// Table 1: visible ECN mirroring and use via QUIC.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// The four rows (toplists/c-n-o × domains/IPs).
    pub rows: Vec<Table1Row>,
}

/// Build Table 1 from the main IPv4 snapshot.
pub fn table1<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> Table1 {
    let records = snapshot.domain_records(universe);
    let mut rows = Vec::new();
    for scope in [Scope::Toplists, Scope::Cno] {
        // Domain-level counts.
        let mut total = 0u64;
        let mut resolved = 0u64;
        let mut quic = 0u64;
        let mut mirroring = 0u64;
        let mut uses = 0u64;
        // IP-level sets.
        let mut resolved_ips = BTreeSet::new();
        let mut quic_ips = BTreeSet::new();
        let mut mirroring_ips = BTreeSet::new();
        let mut use_ips = BTreeSet::new();
        for record in &records {
            if !scope.matches(universe, record.domain_idx) {
                continue;
            }
            total += 1;
            if record.resolved {
                resolved += 1;
                if let Some(host) = record.host_id {
                    resolved_ips.insert(host);
                }
            }
            if record.quic {
                quic += 1;
                if let Some(host) = record.host_id {
                    quic_ips.insert(host);
                    if record.mirror_use.mirroring {
                        mirroring_ips.insert(host);
                    }
                    if record.mirror_use.uses_ecn {
                        use_ips.insert(host);
                    }
                }
                if record.mirror_use.mirroring {
                    mirroring += 1;
                }
                if record.mirror_use.uses_ecn {
                    uses += 1;
                }
            }
        }
        let pct = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        rows.push(Table1Row {
            scope: scope.label(),
            unit: "Domains",
            total,
            resolved,
            quic,
            mirroring: pct(mirroring, quic),
            uses: pct(uses, quic),
        });
        rows.push(Table1Row {
            scope: scope.label(),
            unit: "IPs",
            total: resolved_ips.len() as u64,
            resolved: resolved_ips.len() as u64,
            quic: quic_ips.len() as u64,
            mirroring: pct(mirroring_ips.len() as u64, quic_ips.len() as u64),
            uses: pct(use_ips.len() as u64, quic_ips.len() as u64),
        });
    }
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: visible ECN mirroring and use via QUIC (IPv4)\n\
             {:<14} {:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "Scope", "Unit", "Total", "Resolved", "QUIC", "Mirroring", "Use"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<14} {:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
                row.scope,
                row.unit,
                fmt_count(row.total),
                fmt_count(row.resolved),
                fmt_count(row.quic),
                fmt_pct(row.mirroring),
                fmt_pct(row.uses),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tables 2 and 3
// ---------------------------------------------------------------------------

/// One provider row of Table 2 / Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct ProviderRow {
    /// Rank by total QUIC domains.
    pub rank: usize,
    /// AS organisation name.
    pub org: String,
    /// QUIC domains hosted.
    pub total: u64,
    /// Domains with ECN mirroring.
    pub mirroring: u64,
    /// Domains whose host uses ECN.
    pub uses: u64,
}

/// Table 2 / Table 3: top providers and their ECN support.
#[derive(Debug, Clone, Serialize)]
pub struct ProviderTable {
    /// Scope the table covers.
    pub scope: &'static str,
    /// The listed providers (top by size, plus top mirroring/use providers).
    pub rows: Vec<ProviderRow>,
    /// Aggregate of everything else.
    pub other: ProviderRow,
    /// Total QUIC domains in scope.
    pub total_quic_domains: u64,
}

fn provider_table<S: SnapshotSource + ?Sized>(
    universe: &Universe,
    snapshot: &S,
    scope: Scope,
    listed: usize,
) -> ProviderTable {
    let records = snapshot.domain_records(universe);
    #[derive(Default, Clone)]
    struct Acc {
        total: u64,
        mirroring: u64,
        uses: u64,
    }
    let mut per_org: BTreeMap<String, Acc> = BTreeMap::new();
    let mut total_quic = 0u64;
    for record in &records {
        if !scope.matches(universe, record.domain_idx) || !record.quic {
            continue;
        }
        total_quic += 1;
        let Some(host) = record.host_id else { continue };
        let org = org_of_host(universe, host);
        let acc = per_org.entry(org).or_default();
        acc.total += 1;
        if record.mirror_use.mirroring {
            acc.mirroring += 1;
        }
        if record.mirror_use.uses_ecn {
            acc.uses += 1;
        }
    }
    let mut ranked: Vec<(String, Acc)> = per_org.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));

    // Keep the top-N by size plus the top-5 by mirroring and use, as the
    // paper's tables do.
    let mut keep: BTreeSet<String> = ranked.iter().take(listed).map(|(o, _)| o.clone()).collect();
    let mut by_mirroring = ranked.clone();
    by_mirroring.sort_by_key(|entry| std::cmp::Reverse(entry.1.mirroring));
    for (org, acc) in by_mirroring.iter().take(5) {
        if acc.mirroring > 0 {
            keep.insert(org.clone());
        }
    }
    let mut by_use = ranked.clone();
    by_use.sort_by_key(|entry| std::cmp::Reverse(entry.1.uses));
    for (org, acc) in by_use.iter().take(5) {
        if acc.uses > 0 {
            keep.insert(org.clone());
        }
    }

    let mut rows = Vec::new();
    let mut other = ProviderRow {
        rank: 0,
        org: "<other>".to_string(),
        total: 0,
        mirroring: 0,
        uses: 0,
    };
    for (rank, (org, acc)) in ranked.iter().enumerate() {
        if keep.contains(org) {
            rows.push(ProviderRow {
                rank: rank + 1,
                org: org.clone(),
                total: acc.total,
                mirroring: acc.mirroring,
                uses: acc.uses,
            });
        } else {
            other.total += acc.total;
            other.mirroring += acc.mirroring;
            other.uses += acc.uses;
        }
    }
    ProviderTable {
        scope: scope.label(),
        rows,
        other,
        total_quic_domains: total_quic,
    }
}

/// Table 2: top providers of com/net/org QUIC domains.
pub fn table2<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> ProviderTable {
    provider_table(universe, snapshot, Scope::Cno, 8)
}

/// Table 3: top providers of toplist QUIC domains.
pub fn table3<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> ProviderTable {
    provider_table(universe, snapshot, Scope::Toplists, 5)
}

impl ProviderTable {
    /// The row for a specific organisation, if listed.
    pub fn row(&self, org: &str) -> Option<&ProviderRow> {
        self.rows.iter().find(|r| r.org == org)
    }
}

impl fmt::Display for ProviderTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Top providers of {} QUIC domains ({} total)\n{:<4} {:<26} {:>12} {:>12} {:>12}",
            self.scope,
            fmt_count(self.total_quic_domains),
            "#",
            "AS Organisation",
            "Total",
            "Mirroring",
            "Use"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<4} {:<26} {:>12} {:>12} {:>12}",
                row.rank,
                row.org,
                fmt_count(row.total),
                fmt_count(row.mirroring),
                fmt_count(row.uses),
            )?;
        }
        writeln!(
            f,
            "{:<4} {:<26} {:>12} {:>12} {:>12}",
            "",
            self.other.org,
            fmt_count(self.other.total),
            fmt_count(self.other.mirroring),
            fmt_count(self.other.uses),
        )
    }
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

/// One organisation row of Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// AS organisation.
    pub org: String,
    /// Domains whose forward path visibly cleared ECN codepoints.
    pub cleared: u64,
    /// Domains whose host was not selected for tracing.
    pub not_tested: u64,
    /// Domains traced without visible clearing.
    pub not_cleared: u64,
}

/// Table 4: ECN codepoint clearing per AS organisation (non-mirroring
/// com/net/org QUIC domains).
#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    /// Per-organisation rows, sorted by cleared count.
    pub rows: Vec<Table4Row>,
    /// Domain totals: (cleared, not tested, not cleared).
    pub totals: (u64, u64, u64),
    /// IP totals: (cleared, not tested, not cleared).
    pub total_ips: (u64, u64, u64),
}

/// Build Table 4 from the main IPv4 snapshot.
pub fn table4<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> Table4 {
    let records = snapshot.domain_records(universe);
    let verdicts = trace_verdicts(snapshot);
    let mut per_org: BTreeMap<String, Table4Row> = BTreeMap::new();
    let mut totals = (0u64, 0u64, 0u64);
    let mut ips: [BTreeSet<usize>; 3] = [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
    for record in &records {
        if !Scope::Cno.matches(universe, record.domain_idx) || !record.quic {
            continue;
        }
        if record.mirror_use.mirroring {
            continue;
        }
        let Some(host) = record.host_id else { continue };
        let verdict = verdicts.get(&host).copied();
        let org = org_of_host(universe, host);
        let row = per_org.entry(org.clone()).or_insert_with(|| Table4Row {
            org,
            cleared: 0,
            not_tested: 0,
            not_cleared: 0,
        });
        match verdict {
            Some(PathVerdict::Cleared) => {
                row.cleared += 1;
                totals.0 += 1;
                ips[0].insert(host);
            }
            None | Some(PathVerdict::Untested) => {
                row.not_tested += 1;
                totals.1 += 1;
                ips[1].insert(host);
            }
            Some(_) => {
                row.not_cleared += 1;
                totals.2 += 1;
                ips[2].insert(host);
            }
        }
    }
    let mut rows: Vec<Table4Row> = per_org.into_values().collect();
    rows.sort_by(|a, b| {
        b.cleared
            .cmp(&a.cleared)
            .then(b.not_cleared.cmp(&a.not_cleared))
    });
    Table4 {
        rows,
        totals,
        total_ips: (
            ips[0].len() as u64,
            ips[1].len() as u64,
            ips[2].len() as u64,
        ),
    }
}

impl Table4 {
    /// Row for an organisation, if present.
    pub fn row(&self, org: &str) -> Option<&Table4Row> {
        self.rows.iter().find(|r| r.org == org)
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: ECN codepoint clearing per AS organisation (IPv4, non-mirroring domains)\n\
             {:<26} {:>12} {:>12} {:>12}",
            "AS Organisation", "Cleared", "Not Tested", "Not Cleared"
        )?;
        for row in self.rows.iter().take(12) {
            writeln!(
                f,
                "{:<26} {:>12} {:>12} {:>12}",
                row.org,
                fmt_count(row.cleared),
                fmt_count(row.not_tested),
                fmt_count(row.not_cleared),
            )?;
        }
        writeln!(
            f,
            "{:<26} {:>12} {:>12} {:>12}",
            "<total>",
            fmt_count(self.totals.0),
            fmt_count(self.totals.1),
            fmt_count(self.totals.2),
        )?;
        writeln!(
            f,
            "{:<26} {:>12} {:>12} {:>12}",
            "<total IPs>",
            fmt_count(self.total_ips.0),
            fmt_count(self.total_ips.1),
            fmt_count(self.total_ips.2),
        )
    }
}

// ---------------------------------------------------------------------------
// Table 5
// ---------------------------------------------------------------------------

/// Counts for one validation class and one address family.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ClassCount {
    /// Distinct IPs in the class.
    pub ips: u64,
    /// Domains in the class.
    pub domains: u64,
}

/// Table 5: ECN validation results for the com/net/org domains.
#[derive(Debug, Clone, Serialize)]
pub struct Table5 {
    /// Per-class counts for IPv4.
    pub v4: BTreeMap<EcnClass, ClassCount>,
    /// Per-class counts for IPv6 (empty map if IPv6 was not measured).
    pub v6: BTreeMap<EcnClass, ClassCount>,
}

fn classify_snapshot<S: SnapshotSource + ?Sized>(
    universe: &Universe,
    snapshot: &S,
) -> BTreeMap<EcnClass, ClassCount> {
    let records = snapshot.domain_records(universe);
    let mut counts: BTreeMap<EcnClass, ClassCount> = BTreeMap::new();
    let mut ips: BTreeMap<EcnClass, BTreeSet<usize>> = BTreeMap::new();
    for record in &records {
        if !Scope::Cno.matches(universe, record.domain_idx) || !record.quic {
            continue;
        }
        let Some(class) = record.class else { continue };
        counts.entry(class).or_default().domains += 1;
        if let Some(host) = record.host_id {
            ips.entry(class).or_default().insert(host);
        }
    }
    for (class, hosts) in ips {
        counts.entry(class).or_default().ips = hosts.len() as u64;
    }
    counts
}

/// Build Table 5 from the main IPv4 snapshot and the optional IPv6 snapshot.
pub fn table5<S: SnapshotSource + ?Sized>(universe: &Universe, v4: &S, v6: Option<&S>) -> Table5 {
    Table5 {
        v4: classify_snapshot(universe, v4),
        v6: v6
            .map(|s| classify_snapshot(universe, s))
            .unwrap_or_default(),
    }
}

impl Table5 {
    /// Domain count for a class (IPv4).
    pub fn v4_domains(&self, class: EcnClass) -> u64 {
        self.v4.get(&class).map(|c| c.domains).unwrap_or(0)
    }

    /// Domain count for a class (IPv6).
    pub fn v6_domains(&self, class: EcnClass) -> u64 {
        self.v6.get(&class).map(|c| c.domains).unwrap_or(0)
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5: ECN validation results (com/net/org)\n{:<20} {:>10} {:>12} {:>10} {:>12}",
            "Mirrored counters", "IPv4 IPs", "IPv4 Domains", "IPv6 IPs", "IPv6 Domains"
        )?;
        let order = [
            EcnClass::AllCe,
            EcnClass::RemarkEct1,
            EcnClass::Undercount,
            EcnClass::Capable,
            EcnClass::Other,
            EcnClass::NoMirroring,
        ];
        for class in order {
            let v4 = self.v4.get(&class).copied().unwrap_or_default();
            let v6 = self.v6.get(&class).copied().unwrap_or_default();
            if v4.domains == 0 && v6.domains == 0 && class == EcnClass::Other {
                continue;
            }
            writeln!(
                f,
                "{:<20} {:>10} {:>12} {:>10} {:>12}",
                class.label(),
                fmt_count(v4.ips),
                fmt_count(v4.domains),
                fmt_count(v6.ips),
                fmt_count(v6.domains),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 6
// ---------------------------------------------------------------------------

/// Table 6: the AS organisations behind the three biggest validation classes.
#[derive(Debug, Clone, Serialize)]
pub struct Table6 {
    /// Top organisations per class: (org, domain count), plus an `<other>` row.
    pub columns: BTreeMap<EcnClass, Vec<(String, u64)>>,
}

/// Build Table 6 from the main IPv4 snapshot.
pub fn table6<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> Table6 {
    let records = snapshot.domain_records(universe);
    let mut per_class: BTreeMap<EcnClass, BTreeMap<String, u64>> = BTreeMap::new();
    for record in &records {
        if !Scope::Cno.matches(universe, record.domain_idx) || !record.quic {
            continue;
        }
        let Some(class) = record.class else { continue };
        if !matches!(
            class,
            EcnClass::Capable | EcnClass::Undercount | EcnClass::RemarkEct1
        ) {
            continue;
        }
        let Some(host) = record.host_id else { continue };
        let org = org_of_host(universe, host);
        *per_class.entry(class).or_default().entry(org).or_default() += 1;
    }
    let mut columns = BTreeMap::new();
    for (class, orgs) in per_class {
        let mut ranked: Vec<(String, u64)> = orgs.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut rows: Vec<(String, u64)> = ranked.iter().take(5).cloned().collect();
        let other: u64 = ranked.iter().skip(5).map(|(_, c)| c).sum();
        rows.push(("<other>".to_string(), other));
        columns.insert(class, rows);
    }
    Table6 { columns }
}

impl Table6 {
    /// The top organisation for a class, if any.
    pub fn top_org(&self, class: EcnClass) -> Option<&str> {
        self.columns
            .get(&class)
            .and_then(|rows| rows.first())
            .map(|(org, _)| org.as_str())
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: AS organisations per validation class (IPv4, com/net/org)"
        )?;
        for class in [
            EcnClass::Capable,
            EcnClass::Undercount,
            EcnClass::RemarkEct1,
        ] {
            writeln!(f, "  {}:", class.label())?;
            if let Some(rows) = self.columns.get(&class) {
                for (org, count) in rows {
                    writeln!(f, "    {:<26} {:>12}", org, fmt_count(*count))?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 7
// ---------------------------------------------------------------------------

/// Tracebox-visible path state for domains in a validation failure class.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Table7Row {
    /// The path visibly re-marked ECT(0) to ECT(1).
    pub remarked_to_ect1: ClassCount,
    /// The path visibly cleared the codepoints to not-ECT.
    pub cleared_to_not_ect: ClassCount,
    /// The trace shows the codepoint unchanged (ECT(0) end to end).
    pub unchanged_ect0: ClassCount,
    /// The host was not traced (sampling) or the trace was unusable.
    pub not_tested: ClassCount,
}

/// Table 7: validation failures and the network impacts seen for them.
#[derive(Debug, Clone, Serialize)]
pub struct Table7 {
    /// Row for the re-marking failure class.
    pub remarking: Table7Row,
    /// Row for the undercount failure class.
    pub undercount: Table7Row,
}

/// Build Table 7 from the main IPv4 snapshot.
pub fn table7<S: SnapshotSource + ?Sized>(universe: &Universe, snapshot: &S) -> Table7 {
    let records = snapshot.domain_records(universe);
    let verdicts = trace_verdicts(snapshot);
    let mut remarking = Table7Row::default();
    let mut undercount = Table7Row::default();
    let mut ip_sets: BTreeMap<(u8, u8), BTreeSet<usize>> = BTreeMap::new();
    for record in &records {
        if !Scope::Cno.matches(universe, record.domain_idx) || !record.quic {
            continue;
        }
        let class = match record.class {
            Some(EcnClass::RemarkEct1) => 0u8,
            Some(EcnClass::Undercount) => 1u8,
            _ => continue,
        };
        let Some(host) = record.host_id else { continue };
        let verdict = verdicts.get(&host).copied();
        let column = match verdict {
            Some(PathVerdict::RemarkedToEct1) => 0u8,
            Some(PathVerdict::Cleared) => 1u8,
            Some(PathVerdict::NoChange)
            | Some(PathVerdict::RemarkedToEct0)
            | Some(PathVerdict::CeMarked) => 2u8,
            None | Some(PathVerdict::Untested) => 3u8,
        };
        let row = if class == 0 {
            &mut remarking
        } else {
            &mut undercount
        };
        let cell = match column {
            0 => &mut row.remarked_to_ect1,
            1 => &mut row.cleared_to_not_ect,
            2 => &mut row.unchanged_ect0,
            _ => &mut row.not_tested,
        };
        cell.domains += 1;
        ip_sets.entry((class, column)).or_default().insert(host);
    }
    for ((class, column), hosts) in ip_sets {
        let row = if class == 0 {
            &mut remarking
        } else {
            &mut undercount
        };
        let cell = match column {
            0 => &mut row.remarked_to_ect1,
            1 => &mut row.cleared_to_not_ect,
            2 => &mut row.unchanged_ect0,
            _ => &mut row.not_tested,
        };
        cell.ips = hosts.len() as u64;
    }
    Table7 {
        remarking,
        undercount,
    }
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 7: validation failures vs. tracebox-visible path impact (com/net/org, IPv4)\n\
             {:<14} {:>20} {:>16} {:>14} {:>14}",
            "", "ECT(0)->ECT(1)", "not-ECT", "ECT(0)", "not tested"
        )?;
        for (label, row) in [
            ("Re-Marking", &self.remarking),
            ("Undercount", &self.undercount),
        ] {
            writeln!(
                f,
                "{:<14} {:>20} {:>16} {:>14} {:>14}",
                label,
                format!(
                    "{} / {}",
                    fmt_count(row.remarked_to_ect1.ips),
                    fmt_count(row.remarked_to_ect1.domains)
                ),
                format!(
                    "{} / {}",
                    fmt_count(row.cleared_to_not_ect.ips),
                    fmt_count(row.cleared_to_not_ect.domains)
                ),
                format!(
                    "{} / {}",
                    fmt_count(row.unchanged_ect0.ips),
                    fmt_count(row.unchanged_ect0.domains)
                ),
                format!(
                    "{} / {}",
                    fmt_count(row.not_tested.ips),
                    fmt_count(row.not_tested.domains)
                ),
            )?;
        }
        Ok(())
    }
}
