//! Report builders: one per table and figure of the paper.
//!
//! Every builder consumes only the measurement results (plus the DNS and
//! as2org data a real scanner would also have) and produces a printable
//! structure whose rows mirror the corresponding table or figure.  The
//! absolute counts depend on the universe scale; the *shape* — who wins, by
//! roughly which factor, where the crossovers are — is what EXPERIMENTS.md
//! compares against the paper.

mod figures;
mod tables;

pub use figures::{
    figure3, figure4, figure5, figure6, figure7, DomainState, Figure3, Figure3Point, Figure4,
    Figure5, Figure6, Figure7, Figure7Row, MirrorUseQuadrant, QuicCeCategory, TcpCategory,
};
pub use tables::{
    table1, table2, table3, table4, table5, table6, table7, ClassCount, ProviderRow, ProviderTable,
    Table1, Table1Row, Table4, Table4Row, Table5, Table6, Table7, Table7Row,
};

/// Format a count with thousands separators (tables in the paper use `k`/`M`
/// suffixes; we keep exact counts but group digits for readability).
pub(crate) fn fmt_count(value: u64) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

/// Format a percentage with one decimal.
pub(crate) fn fmt_pct(value: f64) -> String {
    format!("{:.1} %", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(17_300_000), "17,300,000");
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(fmt_pct(0.056), "5.6 %");
        assert_eq!(fmt_pct(0.0), "0.0 %");
    }
}
