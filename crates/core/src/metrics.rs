//! Deterministic scan metrics.
//!
//! [`ScanMetrics`] is the scanner's instrumentation surface: probe outcome
//! counters, per-class ECN validation counts, loss/latency histograms and
//! the aggregated engine/queue metrics of every simulated connection.  All
//! of it obeys the workspace determinism invariant — every value is a `u64`
//! recorded per host and merged commutatively, so
//! [`ScanMetrics::snapshot`] is bit-identical for any worker count.
//!
//! Scheduling telemetry (batches per worker, reorder depth) is *not* in
//! here: it depends on the worker count by construction and lives in
//! [`crate::executor::ExecutorStats`], exposed separately through
//! [`crate::scanner::Scanner::scheduling_snapshot`].

use crate::observation::EcnClass;
use crate::resilience::ProbeError;
use qem_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::Mutex;

/// Stable metric-name slug of an ECN validation class (Table 5's rows).
pub fn class_slug(class: EcnClass) -> &'static str {
    match class {
        EcnClass::NoMirroring => "no_mirroring",
        EcnClass::Undercount => "undercount",
        EcnClass::RemarkEct1 => "remark_ect1",
        EcnClass::AllCe => "all_ce",
        EcnClass::Capable => "capable",
        EcnClass::Other => "other",
    }
}

/// Probe-outcome metrics of one scanner, deterministic across worker counts.
#[derive(Debug)]
pub struct ScanMetrics {
    registry: MetricsRegistry,
    /// Engine/queue metrics of every simulated connection, merged as the
    /// scan progresses.  Merge order varies with scheduling; the merged
    /// value does not (all merges are commutative).
    engine: Mutex<MetricsSnapshot>,
    /// Scheduling noise (executor stats) — kept out of [`Self::snapshot`].
    scheduling: Mutex<MetricsSnapshot>,
    pub(crate) hosts: Counter,
    pub(crate) no_address: Counter,
    pub(crate) quic_no_stack: Counter,
    pub(crate) quic_attempted: Counter,
    pub(crate) quic_connected: Counter,
    pub(crate) quic_reachable: Counter,
    pub(crate) tcp_probed: Counter,
    pub(crate) tcp_connected: Counter,
    pub(crate) traced: Counter,
    pub(crate) trace_impaired: Counter,
    pub(crate) quic_forward_losses: Counter,
    pub(crate) quic_reverse_losses: Counter,
    pub(crate) quic_elapsed_us: Histogram,
    pub(crate) quic_retries: Counter,
    pub(crate) quic_recovered: Counter,
    pub(crate) quic_backoff_us: Histogram,
}

impl Default for ScanMetrics {
    fn default() -> Self {
        ScanMetrics::new()
    }
}

impl ScanMetrics {
    /// Fresh metrics with every scanner counter pre-registered (so empty
    /// scans still export a stable key set).
    pub fn new() -> ScanMetrics {
        let registry = MetricsRegistry::new();
        let metrics = ScanMetrics {
            hosts: registry.counter("scan.hosts"),
            no_address: registry.counter("scan.no_address"),
            quic_no_stack: registry.counter("scan.quic.no_stack"),
            quic_attempted: registry.counter("scan.quic.attempted"),
            quic_connected: registry.counter("scan.quic.connected"),
            quic_reachable: registry.counter("scan.quic.reachable"),
            tcp_probed: registry.counter("scan.tcp.probed"),
            tcp_connected: registry.counter("scan.tcp.connected"),
            traced: registry.counter("scan.traced"),
            trace_impaired: registry.counter("scan.trace_impaired"),
            quic_forward_losses: registry.counter("scan.quic.forward_losses"),
            quic_reverse_losses: registry.counter("scan.quic.reverse_losses"),
            quic_elapsed_us: registry.histogram("scan.quic.elapsed_us"),
            quic_retries: registry.counter("scan.quic.retries"),
            quic_recovered: registry.counter("scan.quic.recovered"),
            quic_backoff_us: registry.histogram("scan.quic.backoff_us"),
            registry,
            engine: Mutex::new(MetricsSnapshot::new()),
            scheduling: Mutex::new(MetricsSnapshot::new()),
        };
        // Stable key set: every class row exists even at count zero.
        for class in [
            EcnClass::NoMirroring,
            EcnClass::Undercount,
            EcnClass::RemarkEct1,
            EcnClass::AllCe,
            EcnClass::Capable,
            EcnClass::Other,
        ] {
            metrics.registry.counter(&class_name(class));
        }
        // Same for the probe-error taxonomy rows.
        for error in [
            ProbeError::Timeout,
            ProbeError::Blackhole,
            ProbeError::CorruptReply,
            ProbeError::Exhausted { attempts: 0 },
        ] {
            metrics.registry.counter(&probe_error_name(error));
        }
        metrics
    }

    /// Count one host in ECN validation class `class`.
    pub(crate) fn record_class(&self, class: EcnClass) {
        self.registry.counter(&class_name(class)).inc();
    }

    /// Count one final (post-retry) probe failure in its taxonomy row.
    pub(crate) fn record_probe_error(&self, error: ProbeError) {
        self.registry.counter(&probe_error_name(error)).inc();
    }

    /// Fold one connection's engine metrics into the scan-wide aggregate.
    pub(crate) fn absorb_engine(&self, snapshot: &MetricsSnapshot) {
        self.lock_merge(&self.engine, snapshot);
    }

    /// Fold one streaming run's executor stats into the scheduling section.
    pub(crate) fn absorb_scheduling(&self, snapshot: &MetricsSnapshot) {
        self.lock_merge(&self.scheduling, snapshot);
    }

    fn lock_merge(&self, slot: &Mutex<MetricsSnapshot>, snapshot: &MetricsSnapshot) {
        // Poisoning only means a scan worker panicked mid-merge; the
        // accumulated snapshot is still structurally valid.
        let mut agg = slot.lock().unwrap_or_else(|e| e.into_inner());
        agg.merge_from(snapshot);
    }

    /// The deterministic scan snapshot: probe counters plus the aggregated
    /// engine/queue metrics.  Bit-identical across worker counts and
    /// repeat runs (asserted by `tests/scan_determinism.rs`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        let engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        snap.merge_from(&engine);
        snap
    }

    /// The scheduling-noise snapshot (executor batches, reorder depth).
    /// Varies with worker count — never mix it into deterministic exports.
    pub fn scheduling(&self) -> MetricsSnapshot {
        self.scheduling
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

fn class_name(class: EcnClass) -> String {
    format!("scan.class.{}", class_slug(class))
}

fn probe_error_name(error: ProbeError) -> String {
    format!("scan.probe_error.{}", error.slug())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_export_a_stable_key_set() {
        let a = ScanMetrics::new().snapshot();
        let b = ScanMetrics::new().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.counter("scan.hosts"), Some(0));
        assert_eq!(a.counter("scan.class.capable"), Some(0));
        assert_eq!(a.counter("scan.class.no_mirroring"), Some(0));
    }

    #[test]
    fn engine_absorption_is_order_independent() {
        let mut x = MetricsSnapshot::new();
        x.set_counter("engine.events_processed", 10);
        x.set_gauge("engine.virtual_now_us", 5);
        let mut y = MetricsSnapshot::new();
        y.set_counter("engine.events_processed", 7);
        y.set_gauge("engine.virtual_now_us", 9);

        let ab = ScanMetrics::new();
        ab.absorb_engine(&x);
        ab.absorb_engine(&y);
        let ba = ScanMetrics::new();
        ba.absorb_engine(&y);
        ba.absorb_engine(&x);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().counter("engine.events_processed"), Some(17));
        assert_eq!(ab.snapshot().gauge("engine.virtual_now_us"), Some(9));
    }

    #[test]
    fn scheduling_stays_out_of_the_deterministic_snapshot() {
        let m = ScanMetrics::new();
        let mut sched = MetricsSnapshot::new();
        sched.set_counter("executor.batches", 42);
        m.absorb_scheduling(&sched);
        assert_eq!(m.snapshot().counter("executor.batches"), None);
        assert_eq!(m.scheduling().counter("executor.batches"), Some(42));
    }
}
