//! Vantage points: the main measurement host in Aachen and the distributed
//! cloud instances of §4.3 / §8.
//!
//! A vantage point determines which AS the forward path starts in and which
//! local peculiarities apply.  The peculiarities are part of the *simulated
//! world*, not of the pipeline: they reproduce the observations the paper
//! makes about specific locations (the wix.com infrastructure switch that
//! made 5 M domains unreachable from Hawaii and San Francisco, the Google
//! ECN experiments visible from India, and the re-marking hotspot seen from
//! Santiago de Chile).

use qem_netsim::Asn;
use serde::{Deserialize, Serialize};

/// Which platform hosts the vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudProvider {
    /// The university vantage point (RWTH Aachen, upstream DFN).
    Main,
    /// Amazon Web Services.
    Aws,
    /// Vultr.
    Vultr,
}

impl CloudProvider {
    /// Label used in Figure 7 ("M", "A", "V").
    pub fn marker(self) -> char {
        match self {
            CloudProvider::Main => 'M',
            CloudProvider::Aws => 'A',
            CloudProvider::Vultr => 'V',
        }
    }
}

/// Location-specific measurement peculiarities.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VantageQuirks {
    /// Heavy-hitter IPs (the wix.com infrastructure) do not answer QUIC from
    /// this location (§8: Hawaii and San Francisco).
    pub wix_unreachable: bool,
    /// Google hosts mirror every packet as CE and undercount more broadly
    /// (§8: the India anomaly).
    pub google_ce_anomaly: bool,
    /// Probability that an otherwise clean IPv4 path shows ECT(0)→ECT(1)
    /// re-marking from this location (§8: Santiago de Chile, AWS Frankfurt).
    pub extra_remark_probability: f64,
    /// Probability that a path that re-marks from the main vantage point is
    /// clean from here (§8: Vultr Frankfurt sees almost no re-marking).
    pub remark_suppression_probability: f64,
}

/// A measurement vantage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Human-readable location.
    pub name: String,
    /// Hosting platform.
    pub provider: CloudProvider,
    /// The AS the vantage point's traffic originates from.
    pub asn: Asn,
    /// Location-specific peculiarities.
    pub quirks: VantageQuirks,
}

impl VantagePoint {
    /// The main vantage point in Aachen (upstream: DFN, AS 680).
    pub fn main() -> Self {
        VantagePoint {
            name: "Aachen (main)".to_string(),
            provider: CloudProvider::Main,
            asn: Asn::DFN,
            quirks: VantageQuirks::default(),
        }
    }

    fn cloud(name: &str, provider: CloudProvider, quirks: VantageQuirks) -> Self {
        let asn = match provider {
            CloudProvider::Main => Asn::DFN,
            CloudProvider::Aws => Asn(16509),
            CloudProvider::Vultr => Asn(20473),
        };
        VantagePoint {
            name: name.to_string(),
            provider,
            asn,
            quirks,
        }
    }

    /// The 16 distributed cloud vantage points of Figure 7.
    pub fn cloud_fleet() -> Vec<VantagePoint> {
        let plain = VantageQuirks::default();
        vec![
            VantagePoint::cloud(
                "AWS Frankfurt",
                CloudProvider::Aws,
                VantageQuirks {
                    extra_remark_probability: 0.02,
                    ..plain
                },
            ),
            VantagePoint::cloud("AWS N. Virginia", CloudProvider::Aws, plain),
            VantagePoint::cloud("AWS Oregon", CloudProvider::Aws, plain),
            VantagePoint::cloud(
                "AWS Mumbai",
                CloudProvider::Aws,
                VantageQuirks {
                    google_ce_anomaly: true,
                    ..plain
                },
            ),
            VantagePoint::cloud("AWS Tokyo", CloudProvider::Aws, plain),
            VantagePoint::cloud(
                "AWS Sao Paulo",
                CloudProvider::Aws,
                VantageQuirks {
                    extra_remark_probability: 0.01,
                    ..plain
                },
            ),
            VantagePoint::cloud("AWS Sydney", CloudProvider::Aws, plain),
            VantagePoint::cloud(
                "Vultr Frankfurt",
                CloudProvider::Vultr,
                VantageQuirks {
                    remark_suppression_probability: 0.9,
                    ..plain
                },
            ),
            VantagePoint::cloud("Vultr Amsterdam", CloudProvider::Vultr, plain),
            VantagePoint::cloud("Vultr London", CloudProvider::Vultr, plain),
            VantagePoint::cloud("Vultr New Jersey", CloudProvider::Vultr, plain),
            VantagePoint::cloud("Vultr Chicago", CloudProvider::Vultr, plain),
            VantagePoint::cloud(
                "Vultr Silicon Valley",
                CloudProvider::Vultr,
                VantageQuirks {
                    wix_unreachable: true,
                    ..plain
                },
            ),
            VantagePoint::cloud(
                "Vultr Honolulu",
                CloudProvider::Vultr,
                VantageQuirks {
                    wix_unreachable: true,
                    ..plain
                },
            ),
            VantagePoint::cloud(
                "Vultr Santiago",
                CloudProvider::Vultr,
                VantageQuirks {
                    extra_remark_probability: 0.05,
                    ..plain
                },
            ),
            VantagePoint::cloud("Vultr Tokyo", CloudProvider::Vultr, plain),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_sixteen_locations() {
        let fleet = VantagePoint::cloud_fleet();
        assert_eq!(fleet.len(), 16);
        assert!(fleet.iter().any(|v| v.provider == CloudProvider::Aws));
        assert!(fleet.iter().any(|v| v.provider == CloudProvider::Vultr));
        // Names are unique.
        let mut names: Vec<_> = fleet.iter().map(|v| v.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn main_vantage_sits_in_dfn() {
        let main = VantagePoint::main();
        assert_eq!(main.asn, Asn::DFN);
        assert_eq!(main.provider.marker(), 'M');
        assert!(!main.quirks.wix_unreachable);
    }

    #[test]
    fn western_us_instances_lose_the_wix_heavy_hitters() {
        let fleet = VantagePoint::cloud_fleet();
        let affected: Vec<_> = fleet.iter().filter(|v| v.quirks.wix_unreachable).collect();
        assert_eq!(affected.len(), 2);
        assert!(affected.iter().all(|v| v.provider == CloudProvider::Vultr));
    }

    #[test]
    fn india_sees_the_google_anomaly() {
        let fleet = VantagePoint::cloud_fleet();
        assert!(fleet
            .iter()
            .any(|v| v.name.contains("Mumbai") && v.quirks.google_ce_anomaly));
    }
}
