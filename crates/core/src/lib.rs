//! The measurement pipeline of "ECN with QUIC: Challenges in the Wild".
//!
//! This crate ties everything together: it takes a synthetic web landscape
//! ([`qem_web::Universe`]), probes every host with the ECN-validating QUIC
//! client and the ECN-negotiating TCP client over the simulated paths
//! ([`scanner`]), follows up on abnormal hosts with tracebox ([`campaign`]),
//! repeats the measurements from distributed cloud vantage points
//! ([`vantage`]), and finally aggregates the observations into the exact
//! tables and figures of the paper ([`reports`]).
//!
//! The pipeline never reads the universe's ground-truth labels (stack,
//! transit profile, …); it only sees what a real scanner would see —
//! HTTP responses, ACK counters, ICMP quotes — and has to recover the
//! paper's findings from those observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod executor;
pub mod metrics;
pub mod observation;
pub mod reports;
pub mod resilience;
pub mod scanner;
pub mod source;
pub mod vantage;

pub use campaign::{Campaign, CampaignOptions, CampaignResult, SnapshotMeasurement};
pub use executor::{ExecutorStats, ShardedExecutor};
pub use metrics::{class_slug, ScanMetrics};
pub use observation::{DomainRecord, EcnClass, HostMeasurement, MirrorUse};
pub use qem_netsim::CrossTraffic;
pub use resilience::{classify_probe, ProbeError, RetryPolicy};
pub use scanner::{ScanOptions, Scanner};
pub use source::{JoinedSnapshot, SnapshotSource};
pub use vantage::{CloudProvider, VantagePoint};
