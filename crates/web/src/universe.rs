//! The seeded universe generator: hosts, domains, DNS and toplists.

use crate::as2org::AsOrgDb;
use crate::providers::{
    default_landscape, BackgroundSpec, LandscapeSpec, SegmentSpec, TcpEcnProfile,
};
use crate::snapshot::SnapshotDate;
use crate::stacks::StackProfile;
use qem_netsim::{build_duplex_path, Asn, DuplexPath, TransitProfile};
use qem_quic::behavior::ServerBehavior;
use qem_tcp::TcpServerBehavior;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Parameters of universe generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Scale factor relative to the paper's population (1.0 = 183 M domains).
    pub scale: f64,
    /// RNG seed; the same seed always yields the same universe.
    pub seed: u64,
    /// Keep at least one domain for segments whose scaled size rounds to
    /// zero (e.g. the four "All CE" domains), so rare classes stay visible.
    pub ensure_rare_segments: bool,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            scale: 0.001,
            seed: 42,
            ensure_rare_segments: true,
        }
    }
}

impl UniverseConfig {
    /// A smaller universe for fast unit tests (1:10000 scale).
    pub fn tiny() -> Self {
        UniverseConfig {
            scale: 0.0001,
            seed: 7,
            ensure_rare_segments: true,
        }
    }

    fn scaled(&self, paper_count: u64) -> u64 {
        let scaled = (paper_count as f64 * self.scale).round() as u64;
        if scaled == 0 && paper_count > 0 && self.ensure_rare_segments {
            1
        } else {
            scaled
        }
    }
}

/// Which domain lists a domain appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DomainLists {
    /// Member of the `.com/.net/.org` zone files.
    pub cno: bool,
    /// Alexa Top 1M.
    pub alexa: bool,
    /// Cisco Umbrella.
    pub umbrella: bool,
    /// Majestic Million.
    pub majestic: bool,
    /// Tranco.
    pub tranco: bool,
}

impl DomainLists {
    /// Whether the domain is on any of the four toplists.
    pub fn toplist(&self) -> bool {
        self.alexa || self.umbrella || self.majestic || self.tranco
    }
}

/// A web host (one IP, possibly dual-stacked, serving many domains).
#[derive(Debug, Clone, Serialize)]
pub struct Host {
    /// Index in [`Universe::hosts`].
    pub id: usize,
    /// IPv4 address.
    pub ipv4: Ipv4Addr,
    /// IPv6 address, if the host is dual-stacked.
    pub ipv6: Option<Ipv6Addr>,
    /// Index of the owning provider in [`Universe::providers`].
    pub provider: usize,
    /// The provider's ASN.
    pub asn: Asn,
    /// QUIC stack, or `None` for TCP-only hosts.
    pub stack: Option<StackProfile>,
    /// Calibration segment this host came from (diagnostics only).
    pub segment: &'static str,
    /// Whether the host sets ECN codepoints on its own QUIC packets.
    pub uses_ecn: bool,
    /// Per-host quantile controlling LiteSpeed upgrade timing.
    pub upgrade_quantile: f64,
    /// Per-host quantile controlling when the host became QUIC-capable.
    pub availability_quantile: f64,
    /// Whether the HTTP `server` header is suppressed.
    pub suppress_server_header: bool,
    /// Transit behaviour of the IPv4 forward path from the main vantage point.
    pub transit_v4: TransitProfile,
    /// Transit behaviour of the IPv6 forward path.
    pub transit_v6: TransitProfile,
    /// TCP ECN behaviour.
    pub tcp_profile: TcpEcnProfile,
}

impl Host {
    /// The fraction of (eventually QUIC-capable) hosts already reachable via
    /// QUIC at `date`; grows from ~82 % in June 2022 to 100 % in April 2023,
    /// reproducing the total-QUIC growth of Figure 3.
    fn availability_fraction(date: SnapshotDate) -> f64 {
        let m = date.months_since_start().min(11) as f64;
        (0.80 + 0.02 * m).min(1.0)
    }

    /// Whether the host answers QUIC at all at `date`.
    pub fn quic_available_at(&self, date: SnapshotDate) -> bool {
        self.stack.is_some() && self.availability_quantile < Self::availability_fraction(date)
    }

    /// The QUIC behaviour of the host at `date` (`None` when the host is not
    /// reachable via QUIC at that date).
    pub fn quic_behavior_at(&self, date: SnapshotDate) -> Option<ServerBehavior> {
        if !self.quic_available_at(date) {
            return None;
        }
        self.stack.map(|stack| {
            stack.behavior_at(
                date,
                self.upgrade_quantile,
                self.uses_ecn,
                self.suppress_server_header,
            )
        })
    }

    /// TCP behaviour of the host.
    pub fn tcp_behavior(&self) -> TcpServerBehavior {
        self.tcp_profile.behavior()
    }

    /// Address of the host for the requested IP version.
    pub fn addr(&self, v6: bool) -> Option<IpAddr> {
        if v6 {
            self.ipv6.map(IpAddr::V6)
        } else {
            Some(IpAddr::V4(self.ipv4))
        }
    }

    /// Build the duplex path between a vantage point in `vantage_asn` and
    /// this host, applying the calibrated transit behaviour on the forward
    /// direction (the reverse path is clean, as the study can only observe —
    /// and the paper only reports — forward-path impairments).
    pub fn duplex_path_from(&self, vantage_asn: Asn, v6: bool) -> DuplexPath {
        let transit = if v6 { self.transit_v6 } else { self.transit_v4 };
        build_duplex_path(vantage_asn, self.asn, transit, TransitProfile::Clean, v6)
    }
}

/// A domain name with its DNS resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain {
    /// The domain name.
    pub name: String,
    /// Which lists the domain appears on.
    pub lists: DomainLists,
    /// The host serving the domain (`None` = does not resolve).
    pub host: Option<usize>,
    /// Synthetic parking NS record, set for parked domains.
    pub parking_ns: Option<String>,
}

impl Domain {
    /// Whether the domain resolves to an address of the requested family.
    pub fn resolves(&self, universe: &Universe, v6: bool) -> bool {
        self.host
            .map(|h| universe.hosts[h].addr(v6).is_some())
            .unwrap_or(false)
    }
}

/// A provider as materialised in the universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderInfo {
    /// Organisation name.
    pub name: String,
    /// Primary ASN.
    pub asn: Asn,
}

/// The generated web landscape.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Generation parameters.
    pub config: UniverseConfig,
    /// Hosting providers.
    pub providers: Vec<ProviderInfo>,
    /// Hosts (QUIC and TCP-only).
    pub hosts: Vec<Host>,
    /// Domains.
    pub domains: Vec<Domain>,
    /// The AS-organisation / prefix database.
    pub as_org: AsOrgDb,
}

impl Universe {
    /// Generate the default landscape at the configured scale.
    pub fn generate(config: &UniverseConfig) -> Universe {
        Self::generate_from(&default_landscape(), config)
    }

    /// Generate a universe from an explicit landscape specification.
    pub fn generate_from(landscape: &LandscapeSpec, config: &UniverseConfig) -> Universe {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut universe = Universe {
            config: *config,
            providers: Vec::new(),
            hosts: Vec::new(),
            domains: Vec::new(),
            as_org: AsOrgDb::new(),
        };

        for (index, provider) in landscape.providers.iter().enumerate() {
            let provider_idx = universe.providers.len();
            universe.providers.push(ProviderInfo {
                name: provider.name.to_string(),
                asn: provider.asn,
            });
            universe
                .as_org
                .register_org(provider.asn, provider.name, &provider.sibling_asns);
            let octet = 60 + index as u8;
            universe.as_org.register_v4_prefix(octet, provider.asn);
            universe
                .as_org
                .register_v6_prefix(index as u16, provider.asn);
            for segment in &provider.segments {
                universe.add_segment(
                    provider_idx,
                    octet,
                    index as u16,
                    segment,
                    landscape,
                    &mut rng,
                    config,
                );
            }
        }

        // TCP-only background hosts.
        for (index, background) in landscape.background.iter().enumerate() {
            let provider_idx = universe.providers.len();
            let asn = Asn(65000 + index as u32);
            let name = format!("Shared Hosting {index}");
            universe.providers.push(ProviderInfo {
                name: name.clone(),
                asn,
            });
            universe.as_org.register_org(asn, &name, &[]);
            let octet = 140 + index as u8;
            universe.as_org.register_v4_prefix(octet, asn);
            universe.as_org.register_v6_prefix(1000 + index as u16, asn);
            universe.add_background(
                provider_idx,
                octet,
                1000 + index as u16,
                background,
                &mut rng,
                config,
            );
        }

        // Unresolved domains.
        let unresolved_cno = config.scaled(landscape.cno_unresolved);
        let unresolved_top = config.scaled(landscape.toplist_unresolved);
        for i in 0..unresolved_cno {
            let name = format!("nxdomain-{i}.{}", tld(&mut rng));
            universe.domains.push(Domain {
                name,
                lists: DomainLists {
                    cno: true,
                    ..DomainLists::default()
                },
                host: None,
                parking_ns: None,
            });
        }
        for i in 0..unresolved_top {
            universe.domains.push(Domain {
                name: format!("gone-top-{i}.example"),
                lists: toplist_membership(&mut rng),
                host: None,
                parking_ns: None,
            });
        }

        universe
    }

    #[allow(clippy::too_many_arguments)]
    fn add_segment(
        &mut self,
        provider_idx: usize,
        v4_octet: u8,
        v6_index: u16,
        segment: &SegmentSpec,
        landscape: &LandscapeSpec,
        rng: &mut StdRng,
        config: &UniverseConfig,
    ) {
        let cno = config.scaled(segment.cno_quic_domains);
        let top = config.scaled(segment.toplist_quic_domains);
        let total = cno + top;
        if total == 0 {
            return;
        }
        let hosts_needed = total.div_ceil(u64::from(segment.domains_per_ip)).max(1);
        let first_host = self.hosts.len();
        let asn = self.providers[provider_idx].asn;
        for h in 0..hosts_needed {
            let id = self.hosts.len();
            let host_no = id as u32;
            let ipv4 = Ipv4Addr::new(
                v4_octet,
                ((host_no >> 16) & 0xff) as u8,
                ((host_no >> 8) & 0xff) as u8,
                (host_no & 0xff) as u8,
            );
            let has_v6 = rng.gen_bool(segment.ipv6_share.clamp(0.0, 1.0));
            let ipv6 = has_v6.then(|| {
                Ipv6Addr::new(
                    0x2001,
                    0x0db8,
                    v6_index,
                    0,
                    0,
                    0,
                    (host_no >> 16) as u16,
                    host_no as u16,
                )
            });
            self.hosts.push(Host {
                id,
                ipv4,
                ipv6,
                provider: provider_idx,
                asn,
                stack: Some(segment.stack),
                segment: segment.label,
                uses_ecn: segment.uses_ecn,
                upgrade_quantile: rng.gen::<f64>(),
                availability_quantile: rng.gen::<f64>(),
                suppress_server_header: rng
                    .gen_bool(segment.header_suppressed_share.clamp(0.0, 1.0)),
                transit_v4: segment.transit_v4,
                transit_v6: segment.transit_v6,
                tcp_profile: segment.tcp,
            });
            let _ = h;
        }
        let provider_name = self.providers[provider_idx]
            .name
            .to_lowercase()
            .replace(' ', "-");
        for i in 0..cno {
            let host = first_host + (i % hosts_needed) as usize;
            let parked = rng.gen_bool(landscape.parked_share.clamp(0.0, 1.0));
            self.domains.push(Domain {
                name: format!("{provider_name}-{}-{i}.{}", segment.label, tld(rng)),
                lists: DomainLists {
                    cno: true,
                    ..DomainLists::default()
                },
                host: Some(host),
                parking_ns: parked.then(|| "ns1.sedoparking.com".to_string()),
            });
        }
        for i in 0..top {
            let host = first_host + ((cno + i) % hosts_needed) as usize;
            self.domains.push(Domain {
                name: format!("top-{provider_name}-{}-{i}.example", segment.label),
                lists: toplist_membership(rng),
                host: Some(host),
                parking_ns: None,
            });
        }
    }

    fn add_background(
        &mut self,
        provider_idx: usize,
        v4_octet: u8,
        v6_index: u16,
        background: &BackgroundSpec,
        rng: &mut StdRng,
        config: &UniverseConfig,
    ) {
        let cno = config.scaled(background.cno_domains);
        let top = config.scaled(background.toplist_domains);
        let total = cno + top;
        if total == 0 {
            return;
        }
        let hosts_needed = total.div_ceil(u64::from(background.domains_per_ip)).max(1);
        let first_host = self.hosts.len();
        let asn = self.providers[provider_idx].asn;
        for _ in 0..hosts_needed {
            let id = self.hosts.len();
            let host_no = id as u32;
            let has_v6 = rng.gen_bool(background.ipv6_share.clamp(0.0, 1.0));
            self.hosts.push(Host {
                id,
                ipv4: Ipv4Addr::new(
                    v4_octet,
                    ((host_no >> 16) & 0xff) as u8,
                    ((host_no >> 8) & 0xff) as u8,
                    (host_no & 0xff) as u8,
                ),
                ipv6: has_v6.then(|| {
                    Ipv6Addr::new(
                        0x2001,
                        0x0db8,
                        v6_index,
                        0,
                        0,
                        0,
                        (host_no >> 16) as u16,
                        host_no as u16,
                    )
                }),
                provider: provider_idx,
                asn,
                stack: None,
                segment: "tcp-only",
                uses_ecn: false,
                upgrade_quantile: rng.gen::<f64>(),
                availability_quantile: rng.gen::<f64>(),
                suppress_server_header: false,
                transit_v4: TransitProfile::Clean,
                transit_v6: TransitProfile::Clean,
                tcp_profile: background.tcp,
            });
        }
        for i in 0..cno {
            let host = first_host + (i % hosts_needed) as usize;
            self.domains.push(Domain {
                name: format!("site-{v4_octet}-{i}.{}", tld(rng)),
                lists: DomainLists {
                    cno: true,
                    ..DomainLists::default()
                },
                host: Some(host),
                parking_ns: None,
            });
        }
        for i in 0..top {
            let host = first_host + ((cno + i) % hosts_needed) as usize;
            self.domains.push(Domain {
                name: format!("top-site-{v4_octet}-{i}.example"),
                lists: toplist_membership(rng),
                host: Some(host),
                parking_ns: None,
            });
        }
    }

    /// The AS organisation database.
    pub fn as_org(&self) -> &AsOrgDb {
        &self.as_org
    }

    /// Every host with an address in the requested family, in ascending id
    /// order — **the** scan population.  Scanners, store-backed campaigns
    /// and resume all derive their host lists from this one definition, so
    /// the "which hosts does a census cover?" rule cannot drift between the
    /// in-memory and persisted paths.
    pub fn scan_population(&self, ipv6: bool) -> Vec<usize> {
        self.hosts
            .iter()
            .filter(|h| h.addr(ipv6).is_some())
            .map(|h| h.id)
            .collect()
    }

    /// Iterator over domains on the `.com/.net/.org` zone lists.
    pub fn cno_domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter().filter(|d| d.lists.cno)
    }

    /// Iterator over toplist domains.
    pub fn toplist_domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter().filter(|d| d.lists.toplist())
    }

    /// Number of hosts that answer QUIC at `date`.
    pub fn quic_host_count(&self, date: SnapshotDate) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.quic_available_at(date))
            .count()
    }
}

fn tld(rng: &mut StdRng) -> &'static str {
    match rng.gen_range(0..10) {
        0..=5 => "com",
        6..=7 => "net",
        _ => "org",
    }
}

fn toplist_membership(rng: &mut StdRng) -> DomainLists {
    let mut lists = DomainLists {
        cno: false,
        alexa: rng.gen_bool(0.45),
        umbrella: rng.gen_bool(0.4),
        majestic: rng.gen_bool(0.35),
        tranco: rng.gen_bool(0.5),
    };
    if !lists.toplist() {
        lists.tranco = true;
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Universe {
        Universe::generate(&UniverseConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Universe::generate(&UniverseConfig::default());
        let b = Universe::generate(&UniverseConfig::default());
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        assert_eq!(a.domains[100].name, b.domains[100].name);
        assert_eq!(a.hosts[10].ipv4, b.hosts[10].ipv4);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate(&UniverseConfig::default());
        let b = Universe::generate(&UniverseConfig {
            seed: 43,
            ..UniverseConfig::default()
        });
        // Counts stay the same (calibration) but host attributes vary.
        assert_eq!(a.domains.len(), b.domains.len());
        let differs = a
            .hosts
            .iter()
            .zip(&b.hosts)
            .any(|(x, y)| x.upgrade_quantile != y.upgrade_quantile);
        assert!(differs);
    }

    #[test]
    fn population_sizes_scale_with_the_paper() {
        let u = universe();
        // ~183 k c/n/o domains and ~2.7 k toplist domains at 1:1000.
        let cno = u.cno_domains().count();
        let top = u.toplist_domains().count();
        assert!((150_000..=210_000).contains(&cno), "cno = {cno}");
        assert!((2_000..=3_500).contains(&top), "top = {top}");
    }

    #[test]
    fn quic_share_matches_the_paper() {
        let u = universe();
        let quic_cno = u
            .cno_domains()
            .filter(|d| d.host.map(|h| u.hosts[h].stack.is_some()).unwrap_or(false))
            .count() as f64;
        let resolved_cno = u.cno_domains().filter(|d| d.host.is_some()).count() as f64;
        // Paper: 17.3 M QUIC of 159.4 M resolved ≈ 10.9 %.
        let share = quic_cno / resolved_cno;
        assert!((0.07..=0.15).contains(&share), "share = {share}");
    }

    #[test]
    fn hosts_serve_many_domains() {
        let u = universe();
        let quic_hosts = u.hosts.iter().filter(|h| h.stack.is_some()).count() as f64;
        let quic_domains = u
            .domains
            .iter()
            .filter(|d| d.host.map(|h| u.hosts[h].stack.is_some()).unwrap_or(false))
            .count() as f64;
        let ratio = quic_domains / quic_hosts;
        // Paper: 17.3 M domains over 232.75 k IPs ≈ 74 domains per IP.
        assert!(ratio > 20.0 && ratio < 200.0, "ratio = {ratio}");
    }

    #[test]
    fn availability_grows_over_time() {
        let u = universe();
        let early = u.quic_host_count(SnapshotDate::JUN_2022);
        let late = u.quic_host_count(SnapshotDate::APR_2023);
        assert!(early < late);
        assert!(early as f64 > 0.7 * late as f64);
    }

    #[test]
    fn ipv6_coverage_is_partial_and_cloudflare_heavy() {
        let u = universe();
        let v6_hosts = u
            .hosts
            .iter()
            .filter(|h| h.ipv6.is_some() && h.stack.is_some())
            .count();
        assert!(v6_hosts > 0);
        let cloudflare_idx = u
            .providers
            .iter()
            .position(|p| p.name == "Cloudflare")
            .unwrap();
        let cf_v6_domains = u
            .domains
            .iter()
            .filter(|d| {
                d.host
                    .map(|h| u.hosts[h].provider == cloudflare_idx && u.hosts[h].ipv6.is_some())
                    .unwrap_or(false)
            })
            .count();
        let all_v6_quic_domains = u
            .domains
            .iter()
            .filter(|d| {
                d.host
                    .map(|h| u.hosts[h].stack.is_some() && u.hosts[h].ipv6.is_some())
                    .unwrap_or(false)
            })
            .count();
        assert!(
            cf_v6_domains * 2 > all_v6_quic_domains,
            "Cloudflare should dominate IPv6"
        );
    }

    #[test]
    fn prefixes_resolve_back_to_their_org() {
        let u = universe();
        for host in u.hosts.iter().take(200) {
            let asn = u.as_org.asn_of_ip(IpAddr::V4(host.ipv4));
            assert_eq!(asn, Some(host.asn), "host {:?}", host.ipv4);
        }
    }

    #[test]
    fn paths_reflect_the_calibrated_transit() {
        let u = universe();
        let cleared_host = u
            .hosts
            .iter()
            .find(|h| matches!(h.transit_v4, TransitProfile::Clearing { .. }))
            .expect("some host behind a clearing path");
        let path = cleared_host.duplex_path_from(Asn::DFN, false);
        assert!(path.forward.has_ecn_impairment());
        assert!(!path.reverse.has_ecn_impairment());
    }

    #[test]
    fn tiny_universe_is_fast_and_nonempty() {
        let u = Universe::generate(&UniverseConfig::tiny());
        assert!(u.domains.len() > 1_000);
        assert!(u.hosts.iter().any(|h| h.stack.is_some()));
    }
}
