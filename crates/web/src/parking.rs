//! Domain-parking detection (paper §5.1).
//!
//! The study checks NS/CNAME/A records against known parking providers and
//! finds 0.6 % of QUIC-capable `.com/.net/.org` domains to be parked — too
//! few to bias the results.  The universe generator marks the same share of
//! domains as parked; this module provides the classifier the pipeline uses
//! to reproduce the check.

use crate::universe::{Domain, Universe};

/// Well-known parking name-server suffixes (the classifier's rule base).
pub const PARKING_NS_SUFFIXES: &[&str] = &[
    "sedoparking.com",
    "parkingcrew.net",
    "bodis.com",
    "above.com",
    "parklogic.com",
];

/// Whether a domain is classified as parked.
///
/// In the simulation the generator stores the ground truth directly on the
/// domain; the classifier reads the synthetic NS record the generator derives
/// from it, mirroring how the real pipeline infers parking from DNS.
pub fn is_parked(domain: &Domain) -> bool {
    domain
        .parking_ns
        .as_deref()
        .map(|ns| {
            PARKING_NS_SUFFIXES
                .iter()
                .any(|suffix| ns.ends_with(suffix))
        })
        .unwrap_or(false)
}

/// Count parked QUIC domains in the c/n/o zones and their share of all QUIC
/// c/n/o domains (the §5.1 sanity check).
pub fn parked_quic_share(universe: &Universe) -> (u64, f64) {
    let mut quic = 0u64;
    let mut parked = 0u64;
    for domain in &universe.domains {
        if !domain.lists.cno {
            continue;
        }
        let Some(host) = domain.host else { continue };
        if universe.hosts[host].stack.is_some() {
            quic += 1;
            if is_parked(domain) {
                parked += 1;
            }
        }
    }
    let share = if quic == 0 {
        0.0
    } else {
        parked as f64 / quic as f64
    };
    (parked, share)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};

    #[test]
    fn parked_share_matches_the_paper() {
        let universe = Universe::generate(&UniverseConfig::default());
        let (parked, share) = parked_quic_share(&universe);
        assert!(parked > 0, "some parked domains must exist");
        // Paper: 0.6 % of QUIC c/n/o domains; allow generous tolerance at
        // 1:1000 scale.
        assert!(share > 0.001 && share < 0.02, "share = {share}");
    }

    #[test]
    fn classifier_requires_a_parking_ns() {
        let universe = Universe::generate(&UniverseConfig::default());
        let unparked = universe
            .domains
            .iter()
            .find(|d| d.parking_ns.is_none())
            .unwrap();
        assert!(!is_parked(unparked));
    }
}
