//! QUIC stack profiles of deployed web servers, including their evolution
//! over the paper's measurement window.
//!
//! The longitudinal story (§5.3) is driven by software releases, not by the
//! network: LiteSpeed's lsquic mirrored ECN in its QUIC-draft-27 builds,
//! stopped when deployments moved to QUIC v1 during 2022, and mirrors again
//! since lsquic 4.0 (March 2023); Google's quiche gained ECN counting in
//! January/March 2023 commits and was observed experimenting.  Each profile
//! therefore maps a [`SnapshotDate`] (plus a per-host random quantile that
//! spreads upgrade times) to a concrete [`ServerBehavior`].

use crate::snapshot::SnapshotDate;
use qem_packet::ecn::EcnCodepoint;
use qem_packet::quic::QuicVersion;
use qem_quic::behavior::{EcnMirroringBehavior, ServerBehavior};
use qem_quic::transport_params::TransportParameters;
use serde::{Deserialize, Serialize};

/// The QUIC stack (and configuration) running on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackProfile {
    /// Cloudflare's quiche deployment: QUIC v1, no ECN mirroring.
    CloudflareQuiche,
    /// Fastly's quicly deployment: QUIC v1, no ECN mirroring.
    FastlyQuicly,
    /// Google front-end serving Google's own properties: no ECN mirroring.
    GoogleFrontend,
    /// Google front-end proxying third-party sites (wix.com → `Pepyaka`
    /// server header, `via: 1.1 google`): starts mirroring with the
    /// March 2023 quiche change, but the counters undercount.
    GooglePepyakaProxy,
    /// Google front-end variant that reports arriving ECT(0) in the ECT(1)
    /// counter (the suspected internal-ECN exposure of §7.3), active from the
    /// January 2023 quiche commit onwards.
    GoogleEct1Remark,
    /// LiteSpeed with the ECN flag **off**: mirrors while on draft-27, stops
    /// after the upgrade to v1, mirrors again from lsquic 4.0 (March 2023) —
    /// but loses the counters on the handshake→1-RTT switch (undercount).
    LiteSpeedEcnFlagOff,
    /// LiteSpeed with the ECN flag **on**: same version history, but the
    /// mirrored counters are accurate.
    LiteSpeedEcnFlagOn,
    /// LiteSpeed builds with ECN compiled out entirely: never mirror.
    LiteSpeedNoEcn,
    /// Amazon s2n-quic (CloudFront): accurate mirroring and own ECN use.
    S2nQuic,
    /// nginx-quic and similar stacks without ECN support.
    NginxNoEcn,
    /// Small self-hosted stacks with correct ECN support (Caddy, haproxy-quic
    /// with ECN, picoquic, …).
    GenericAccurate,
}

/// lsquic 4.0 (the release that re-enabled ECN mirroring) shipped March 2023.
const LSQUIC_4_0: SnapshotDate = SnapshotDate::MAR_2023;
/// The Google quiche commit adding ECN counters landed January 2023.
const QUICHE_ECN_COMMIT: SnapshotDate = SnapshotDate::new(2023, 1);
/// The Google proxy started mirroring for proxied domains in March 2023.
const GOOGLE_PROXY_MIRRORING: SnapshotDate = SnapshotDate::MAR_2023;

impl StackProfile {
    /// Transport parameters characteristic of the stack.  Hosts running the
    /// same stack share a fingerprint, which is what lets the pipeline
    /// cluster servers that suppress the `server` header (§5.3).
    pub fn transport_params(self) -> TransportParameters {
        let base = TransportParameters::client_default();
        match self {
            StackProfile::LiteSpeedEcnFlagOff
            | StackProfile::LiteSpeedEcnFlagOn
            | StackProfile::LiteSpeedNoEcn => TransportParameters {
                initial_max_data: 1_572_864,
                initial_max_streams_bidi: 100,
                max_idle_timeout_ms: 30_000,
                max_udp_payload_size: 1472,
                ..base
            },
            StackProfile::GoogleFrontend
            | StackProfile::GooglePepyakaProxy
            | StackProfile::GoogleEct1Remark => TransportParameters {
                initial_max_data: 15_728_640,
                initial_max_streams_bidi: 100,
                max_idle_timeout_ms: 240_000,
                ack_delay_exponent: 3,
                ..base
            },
            StackProfile::CloudflareQuiche => TransportParameters {
                initial_max_data: 10_485_760,
                initial_max_streams_bidi: 256,
                max_idle_timeout_ms: 180_000,
                ..base
            },
            StackProfile::FastlyQuicly => TransportParameters {
                initial_max_data: 16_777_216,
                initial_max_streams_bidi: 128,
                max_ack_delay_ms: 20,
                ..base
            },
            StackProfile::S2nQuic => TransportParameters {
                initial_max_data: 8_388_608,
                initial_max_streams_bidi: 120,
                max_ack_delay_ms: 35,
                ..base
            },
            StackProfile::NginxNoEcn => TransportParameters {
                initial_max_data: 4_194_304,
                initial_max_streams_bidi: 32,
                ..base
            },
            StackProfile::GenericAccurate => TransportParameters {
                initial_max_data: 2_097_152,
                initial_max_streams_bidi: 64,
                max_idle_timeout_ms: 60_000,
                ..base
            },
        }
    }

    /// The HTTP `server` header the stack emits (before the per-host
    /// suppression applied by the universe generator).
    pub fn server_header(self) -> Option<&'static str> {
        match self {
            StackProfile::LiteSpeedEcnFlagOff
            | StackProfile::LiteSpeedEcnFlagOn
            | StackProfile::LiteSpeedNoEcn => Some("LiteSpeed"),
            StackProfile::GooglePepyakaProxy => Some("Pepyaka/4.12"),
            StackProfile::GoogleFrontend | StackProfile::GoogleEct1Remark => Some("gws"),
            StackProfile::CloudflareQuiche => Some("cloudflare"),
            StackProfile::FastlyQuicly => None,
            StackProfile::S2nQuic => Some("CloudFront"),
            StackProfile::NginxNoEcn => Some("nginx/1.25"),
            StackProfile::GenericAccurate => Some("Caddy/2.7"),
        }
    }

    /// The `via` header, if the deployment is a reverse proxy.
    pub fn via_header(self) -> Option<&'static str> {
        match self {
            StackProfile::GooglePepyakaProxy => Some("1.1 google"),
            _ => None,
        }
    }

    /// Whether this is one of the LiteSpeed flavours (used by Figure 3's
    /// per-webserver breakdown and the §7.3 root-cause analysis).
    pub fn is_litespeed(self) -> bool {
        matches!(
            self,
            StackProfile::LiteSpeedEcnFlagOff
                | StackProfile::LiteSpeedEcnFlagOn
                | StackProfile::LiteSpeedNoEcn
        )
    }

    /// The month (as a fraction through the upgrade window) at which a host
    /// with upgrade quantile `u` moves from draft-27 to QUIC v1.
    fn litespeed_upgrade_date(upgrade_quantile: f64) -> SnapshotDate {
        // Upgrades roll out between December 2021 and February 2023, so that
        // roughly half of the eventually-mirroring deployments have already
        // moved to QUIC v1 (and stopped mirroring) by June 2022 — the paper
        // sees 2.2 % mirroring then.  A small tail (quantile > 0.95) never
        // upgrades and still speaks draft-27 in April 2023 (the ~30 k
        // "Mirroring (d27)" residue of Figure 4).
        if upgrade_quantile > 0.95 {
            return SnapshotDate::new(2099, 1);
        }
        let slot = (upgrade_quantile / 0.95 * 15.0).floor() as u32; // 0..=14
        let month_index = 12 + slot; // December 2021 == 12
        if month_index <= 12 {
            SnapshotDate::new(2021, month_index as u8)
        } else if month_index <= 24 {
            SnapshotDate::new(2022, (month_index - 12) as u8)
        } else {
            SnapshotDate::new(2023, (month_index - 24) as u8)
        }
    }

    /// The behaviour of a host running this stack at `date`.
    ///
    /// * `upgrade_quantile` — per-host random value in `[0, 1)` spreading
    ///   version upgrades over the measurement window,
    /// * `uses_ecn` — whether this deployment sets ECN codepoints on its own
    ///   packets (the "Use" column of Tables 1–3),
    /// * `suppress_server_header` — whether the host hides its `server`
    ///   header (those domains show up as "Unknown" in Figure 3 and are
    ///   identified via transport parameters).
    pub fn behavior_at(
        self,
        date: SnapshotDate,
        upgrade_quantile: f64,
        uses_ecn: bool,
        suppress_server_header: bool,
    ) -> ServerBehavior {
        let params = self.transport_params();
        let (versions, mirroring) = match self {
            StackProfile::CloudflareQuiche
            | StackProfile::FastlyQuicly
            | StackProfile::GoogleFrontend
            | StackProfile::NginxNoEcn => (vec![QuicVersion::V1], EcnMirroringBehavior::None),
            StackProfile::GooglePepyakaProxy => {
                let mirroring = if date >= GOOGLE_PROXY_MIRRORING {
                    EcnMirroringBehavior::MirrorOnlyHandshake
                } else {
                    EcnMirroringBehavior::None
                };
                (vec![QuicVersion::V1], mirroring)
            }
            StackProfile::GoogleEct1Remark => {
                let mirroring = if date >= QUICHE_ECN_COMMIT {
                    EcnMirroringBehavior::MirrorAsEct1
                } else {
                    EcnMirroringBehavior::None
                };
                (vec![QuicVersion::V1], mirroring)
            }
            StackProfile::LiteSpeedEcnFlagOff
            | StackProfile::LiteSpeedEcnFlagOn
            | StackProfile::LiteSpeedNoEcn => {
                let upgraded = date >= Self::litespeed_upgrade_date(upgrade_quantile);
                let versions = if upgraded {
                    vec![QuicVersion::V1, QuicVersion::DRAFT_34]
                } else {
                    vec![QuicVersion::DRAFT_27]
                };
                let mirrors_now = match self {
                    StackProfile::LiteSpeedNoEcn => false,
                    // Draft-27 builds mirrored; v1 builds only from lsquic 4.0.
                    _ => !upgraded || date >= LSQUIC_4_0,
                };
                let mirroring = if !mirrors_now {
                    EcnMirroringBehavior::None
                } else if self == StackProfile::LiteSpeedEcnFlagOn {
                    EcnMirroringBehavior::Accurate
                } else {
                    EcnMirroringBehavior::MirrorOnlyHandshake
                };
                (versions, mirroring)
            }
            StackProfile::S2nQuic | StackProfile::GenericAccurate => {
                (vec![QuicVersion::V1], EcnMirroringBehavior::Accurate)
            }
        };
        let egress = if uses_ecn {
            EcnCodepoint::Ect0
        } else {
            EcnCodepoint::NotEct
        };
        let mut behavior = ServerBehavior {
            supported_versions: versions,
            mirroring,
            egress_ecn: egress,
            server_header: if suppress_server_header {
                None
            } else {
                self.server_header().map(str::to_string)
            },
            via_header: self.via_header().map(str::to_string),
            transport_params: params,
            serves_http: true,
        };
        // Proxied wix.com sites keep their Pepyaka header even though the
        // transport parameters are Google's.
        if self == StackProfile::GooglePepyakaProxy {
            behavior.transport_params = StackProfile::GoogleFrontend.transport_params();
        }
        behavior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloudflare_never_mirrors() {
        for date in SnapshotDate::longitudinal_range() {
            let b = StackProfile::CloudflareQuiche.behavior_at(date, 0.5, false, false);
            assert_eq!(b.mirroring, EcnMirroringBehavior::None);
        }
    }

    #[test]
    fn litespeed_story_matches_the_paper() {
        let stack = StackProfile::LiteSpeedEcnFlagOff;
        // Before its upgrade a host speaks draft-27 and mirrors.
        let early = stack.behavior_at(SnapshotDate::JUN_2022, 0.5, false, false);
        assert_eq!(early.supported_versions, vec![QuicVersion::DRAFT_27]);
        assert!(early.mirroring.mirrors());
        // After upgrading (before lsquic 4.0) it speaks v1 and stops mirroring.
        let mid = stack.behavior_at(SnapshotDate::FEB_2023, 0.5, false, false);
        assert!(mid.supported_versions.contains(&QuicVersion::V1));
        assert_eq!(mid.mirroring, EcnMirroringBehavior::None);
        // From March 2023 it mirrors again — but undercounts.
        let late = stack.behavior_at(SnapshotDate::APR_2023, 0.5, false, false);
        assert_eq!(late.mirroring, EcnMirroringBehavior::MirrorOnlyHandshake);
    }

    #[test]
    fn litespeed_holdouts_stay_on_draft_27() {
        let b = StackProfile::LiteSpeedEcnFlagOff.behavior_at(
            SnapshotDate::APR_2023,
            0.99,
            false,
            false,
        );
        assert_eq!(b.supported_versions, vec![QuicVersion::DRAFT_27]);
        assert!(b.mirroring.mirrors());
    }

    #[test]
    fn litespeed_ecn_flag_on_is_accurate() {
        let b =
            StackProfile::LiteSpeedEcnFlagOn.behavior_at(SnapshotDate::APR_2023, 0.1, false, false);
        assert_eq!(b.mirroring, EcnMirroringBehavior::Accurate);
        let off = StackProfile::LiteSpeedEcnFlagOff.behavior_at(
            SnapshotDate::APR_2023,
            0.1,
            false,
            false,
        );
        assert_eq!(off.mirroring, EcnMirroringBehavior::MirrorOnlyHandshake);
    }

    #[test]
    fn google_experiments_start_with_the_commits() {
        let proxy = StackProfile::GooglePepyakaProxy;
        assert!(!proxy
            .behavior_at(SnapshotDate::FEB_2023, 0.0, false, false)
            .mirroring
            .mirrors());
        assert!(proxy
            .behavior_at(SnapshotDate::APR_2023, 0.0, false, false)
            .mirroring
            .mirrors());
        let remark = StackProfile::GoogleEct1Remark;
        assert!(!remark
            .behavior_at(SnapshotDate::new(2022, 12), 0.0, false, false)
            .mirroring
            .mirrors());
        assert_eq!(
            remark
                .behavior_at(SnapshotDate::APR_2023, 0.0, false, false)
                .mirroring,
            EcnMirroringBehavior::MirrorAsEct1
        );
    }

    #[test]
    fn pepyaka_has_google_transport_params_but_own_header() {
        let b =
            StackProfile::GooglePepyakaProxy.behavior_at(SnapshotDate::APR_2023, 0.0, false, false);
        assert_eq!(
            b.transport_params.fingerprint(),
            StackProfile::GoogleFrontend
                .transport_params()
                .fingerprint()
        );
        assert_eq!(b.server_header.as_deref(), Some("Pepyaka/4.12"));
        assert_eq!(b.via_header.as_deref(), Some("1.1 google"));
    }

    #[test]
    fn unknown_header_litespeed_shares_fingerprint_with_named_litespeed() {
        let named = StackProfile::LiteSpeedEcnFlagOff.behavior_at(
            SnapshotDate::APR_2023,
            0.3,
            false,
            false,
        );
        let unnamed =
            StackProfile::LiteSpeedEcnFlagOff.behavior_at(SnapshotDate::APR_2023, 0.3, false, true);
        assert_eq!(named.server_header.as_deref(), Some("LiteSpeed"));
        assert_eq!(unnamed.server_header, None);
        assert_eq!(
            named.transport_params.fingerprint(),
            unnamed.transport_params.fingerprint()
        );
    }

    #[test]
    fn s2n_quic_uses_and_mirrors() {
        let b = StackProfile::S2nQuic.behavior_at(SnapshotDate::APR_2023, 0.0, true, false);
        assert_eq!(b.mirroring, EcnMirroringBehavior::Accurate);
        assert_eq!(b.egress_ecn, EcnCodepoint::Ect0);
        assert_eq!(b.server_header.as_deref(), Some("CloudFront"));
    }

    #[test]
    fn upgrade_dates_are_monotone_in_the_quantile() {
        let d1 = StackProfile::litespeed_upgrade_date(0.0);
        let d2 = StackProfile::litespeed_upgrade_date(0.5);
        let d3 = StackProfile::litespeed_upgrade_date(0.94);
        assert!(d1 <= d2 && d2 <= d3);
        assert!(d3 <= SnapshotDate::FEB_2023);
    }
}
