//! Measurement snapshot dates.
//!
//! The study runs weekly; this reproduction models the monthly granularity
//! the longitudinal figures (3, 4 and 8) are drawn at, plus the specific
//! measurement weeks referenced by the tables (week 13/15/16/20 of 2023).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A year/month snapshot date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotDate {
    /// Calendar year.
    pub year: u16,
    /// Calendar month (1–12).
    pub month: u8,
}

impl SnapshotDate {
    /// Construct a snapshot date.
    pub const fn new(year: u16, month: u8) -> Self {
        SnapshotDate { year, month }
    }

    /// June 2022 — the start of the longitudinal window (Figure 3).
    pub const JUN_2022: SnapshotDate = SnapshotDate::new(2022, 6);
    /// February 2023 — the mirroring low point (Figure 4).
    pub const FEB_2023: SnapshotDate = SnapshotDate::new(2023, 2);
    /// March 2023 — the lsquic 4.0 release and the mirroring jump.
    pub const MAR_2023: SnapshotDate = SnapshotDate::new(2023, 3);
    /// April 2023 — the main IPv4 measurement week (week 15/2023, Tables 1–7).
    pub const APR_2023: SnapshotDate = SnapshotDate::new(2023, 4);
    /// The IPv6 measurement (week 13/2023) also falls in late March.
    pub const IPV6_WEEK: SnapshotDate = SnapshotDate::new(2023, 3);
    /// May 2023 — the TCP-vs-QUIC CE experiment (week 20/2023, Figure 6).
    pub const MAY_2023: SnapshotDate = SnapshotDate::new(2023, 5);

    /// Months elapsed since June 2022 (can be negative conceptually, clamped
    /// to zero here because the model starts at that date).
    pub fn months_since_start(self) -> u32 {
        let total = u32::from(self.year) * 12 + u32::from(self.month) - 1;
        let start = 2022 * 12 + 5;
        total.saturating_sub(start)
    }

    /// The date `months` months after June 2022 — the inverse of
    /// [`SnapshotDate::months_since_start`] for every date at or after the
    /// start of the model.  `qem-store`'s longitudinal manifests persist
    /// dates in this compact offset form and rely on the round-trip.
    pub fn from_months_since_start(months: u32) -> SnapshotDate {
        let total = 2022 * 12 + 5 + months;
        SnapshotDate {
            year: (total / 12) as u16,
            month: (total % 12 + 1) as u8,
        }
    }

    /// The monthly sequence from June 2022 to April 2023 inclusive, the range
    /// Figure 3 plots.
    pub fn longitudinal_range() -> Vec<SnapshotDate> {
        let mut out = Vec::new();
        for month in 6..=12 {
            out.push(SnapshotDate::new(2022, month));
        }
        for month in 1..=4 {
            out.push(SnapshotDate::new(2023, month));
        }
        out
    }
}

impl fmt::Display for SnapshotDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}-{:02}", self.year % 100, self.month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_chronological() {
        assert!(SnapshotDate::JUN_2022 < SnapshotDate::FEB_2023);
        assert!(SnapshotDate::FEB_2023 < SnapshotDate::MAR_2023);
        assert!(SnapshotDate::MAR_2023 < SnapshotDate::APR_2023);
    }

    #[test]
    fn months_since_start() {
        assert_eq!(SnapshotDate::JUN_2022.months_since_start(), 0);
        assert_eq!(SnapshotDate::new(2022, 7).months_since_start(), 1);
        assert_eq!(SnapshotDate::APR_2023.months_since_start(), 10);
    }

    #[test]
    fn longitudinal_range_matches_figure_3() {
        let range = SnapshotDate::longitudinal_range();
        assert_eq!(range.len(), 11);
        assert_eq!(range[0], SnapshotDate::JUN_2022);
        assert_eq!(*range.last().unwrap(), SnapshotDate::APR_2023);
        assert!(range.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn months_since_start_round_trips_for_the_model_window() {
        // Every month from the start of the model through the end of 2025
        // (well past any date the reproduction uses) must survive the
        // offset encoding qem-store persists.
        for months in 0..43 {
            let date = SnapshotDate::from_months_since_start(months);
            assert_eq!(date.months_since_start(), months, "offset {months}");
        }
        // And the named constants map onto their known offsets.
        for date in [
            SnapshotDate::JUN_2022,
            SnapshotDate::FEB_2023,
            SnapshotDate::MAR_2023,
            SnapshotDate::APR_2023,
            SnapshotDate::MAY_2023,
        ] {
            assert_eq!(
                SnapshotDate::from_months_since_start(date.months_since_start()),
                date
            );
        }
        // Year boundaries land on real months.
        assert_eq!(
            SnapshotDate::from_months_since_start(6),
            SnapshotDate::new(2022, 12)
        );
        assert_eq!(
            SnapshotDate::from_months_since_start(7),
            SnapshotDate::new(2023, 1)
        );
    }

    #[test]
    fn longitudinal_range_is_strictly_ordered_and_unique() {
        let range = SnapshotDate::longitudinal_range();
        // Strict chronological order implies uniqueness; check both anyway
        // so a future edit that breaks one invariant names it precisely.
        assert!(range.windows(2).all(|w| w[0] < w[1]), "range must ascend");
        let mut deduped = range.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), range.len(), "range must not repeat dates");
        // Consecutive months: the offsets form 0, 1, 2, … with no gaps —
        // the property the store's delta chain indexing relies on.
        for (idx, date) in range.iter().enumerate() {
            assert_eq!(date.months_since_start(), idx as u32);
        }
    }

    #[test]
    fn display_matches_paper_axis_labels() {
        assert_eq!(SnapshotDate::JUN_2022.to_string(), "22-06");
        assert_eq!(SnapshotDate::APR_2023.to_string(), "23-04");
    }
}
