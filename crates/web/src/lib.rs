//! A synthetic web landscape calibrated to the paper's findings.
//!
//! The study scans ~183 M `.com/.net/.org` domains and ~2.7 M toplist domains
//! against the live Internet.  This crate replaces that population with a
//! seeded, deterministic generator: hosting providers are modelled with the
//! market shares, QUIC stacks, ECN behaviours, transit paths and IPv6
//! coverage the paper reports (Tables 1–7, Figures 3–8), scaled down by a
//! configurable factor (1:1000 by default).
//!
//! The calibration is **input**, not output: the measurement pipeline in
//! `qem-core` never reads these ground-truth labels — it probes the simulated
//! hosts over simulated paths exactly like the real study and must *recover*
//! the numbers from observations.  Comparing the recovered tables against the
//! paper is what EXPERIMENTS.md documents.
//!
//! Main entry point: [`Universe::generate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as2org;
pub mod parking;
pub mod providers;
pub mod snapshot;
pub mod stacks;
pub mod universe;

pub use as2org::AsOrgDb;
pub use providers::{default_landscape, ProviderSpec, SegmentSpec};
pub use snapshot::SnapshotDate;
pub use stacks::StackProfile;
pub use universe::{Domain, DomainLists, Host, Universe, UniverseConfig};
