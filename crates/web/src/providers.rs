//! The calibrated hosting-provider landscape.
//!
//! Every number in [`default_landscape`] is taken from (or derived from) the
//! paper's tables for the April 2023 measurement week: Table 2/3 give the
//! per-provider domain counts and their mirroring/use splits, Table 4 the
//! share of domains behind ECN-clearing transit, Tables 5–7 the validation
//! failure classes, Figure 5 the IPv6 coverage and Figure 6 the TCP
//! behaviour.  Counts are expressed at *paper scale* (absolute domain counts)
//! and scaled down by [`UniverseConfig::scale`](crate::universe::UniverseConfig)
//! during generation.
//!
//! The calibration is intentionally explicit, line by line, so that a reader
//! can audit which paper statement each segment encodes.

use crate::stacks::StackProfile;
use qem_netsim::{Asn, TransitProfile};
use qem_tcp::TcpServerBehavior;
use serde::{Deserialize, Serialize};

/// TCP ECN behaviour classes used by the calibration (Figure 6 vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpEcnProfile {
    /// Negotiates, mirrors CE and uses ECN itself (the dominant class).
    FullEcn,
    /// Negotiates and mirrors but never sets codepoints itself.
    MirrorOnly,
    /// Negotiates but never echoes CE.
    NegotiateNoMirror,
    /// Does not negotiate ECN at all.
    NoNegotiation,
}

impl TcpEcnProfile {
    /// Convert to a concrete server behaviour.
    pub fn behavior(self) -> TcpServerBehavior {
        match self {
            TcpEcnProfile::FullEcn => TcpServerBehavior::full_ecn(),
            TcpEcnProfile::MirrorOnly => TcpServerBehavior::mirror_only(),
            TcpEcnProfile::NegotiateNoMirror => TcpServerBehavior::negotiate_without_mirroring(),
            TcpEcnProfile::NoNegotiation => TcpServerBehavior::no_ecn(),
        }
    }
}

/// A homogeneous slice of a provider's QUIC deployment.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentSpec {
    /// Human-readable label (shows up in diagnostics only).
    pub label: &'static str,
    /// Number of `.com/.net/.org` QUIC domains in this segment (paper scale).
    pub cno_quic_domains: u64,
    /// Number of toplist QUIC domains in this segment (paper scale).
    pub toplist_quic_domains: u64,
    /// The QUIC stack running on these hosts.
    pub stack: StackProfile,
    /// Whether these hosts set ECN codepoints on their own packets ("Use").
    pub uses_ecn: bool,
    /// Forward-path transit behaviour from the main vantage point (IPv4).
    pub transit_v4: TransitProfile,
    /// Forward-path transit behaviour for IPv6 (almost always clean, §6.2).
    pub transit_v6: TransitProfile,
    /// Fraction of the segment's domains that also resolve to IPv6.
    pub ipv6_share: f64,
    /// Domains hosted per IP address (CDN density).
    pub domains_per_ip: u32,
    /// TCP ECN behaviour of these hosts.
    pub tcp: TcpEcnProfile,
    /// Fraction of hosts that suppress the HTTP `server` header.
    pub header_suppressed_share: f64,
}

impl SegmentSpec {
    #[allow(clippy::too_many_arguments)]
    fn new(
        label: &'static str,
        cno: u64,
        top: u64,
        stack: StackProfile,
        uses_ecn: bool,
        transit_v4: TransitProfile,
        ipv6_share: f64,
        domains_per_ip: u32,
        tcp: TcpEcnProfile,
    ) -> Self {
        SegmentSpec {
            label,
            cno_quic_domains: cno,
            toplist_quic_domains: top,
            stack,
            uses_ecn,
            transit_v4,
            transit_v6: TransitProfile::Clean,
            ipv6_share,
            domains_per_ip,
            tcp,
            header_suppressed_share: if stack.is_litespeed() { 0.3 } else { 0.0 },
        }
    }
}

/// A hosting provider / AS organisation.
#[derive(Debug, Clone, Serialize)]
pub struct ProviderSpec {
    /// Organisation name as reported by the as2org mapping.
    pub name: &'static str,
    /// Primary ASN.
    pub asn: Asn,
    /// Additional ASNs operated by the same organisation (merged by as2org).
    pub sibling_asns: Vec<Asn>,
    /// QUIC deployment segments.
    pub segments: Vec<SegmentSpec>,
}

/// A slice of the non-QUIC background population (TCP-only hosts).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackgroundSpec {
    /// `.com/.net/.org` domains (paper scale).
    pub cno_domains: u64,
    /// Toplist domains (paper scale).
    pub toplist_domains: u64,
    /// TCP behaviour.
    pub tcp: TcpEcnProfile,
    /// Domains per IP.
    pub domains_per_ip: u32,
    /// Fraction with IPv6.
    pub ipv6_share: f64,
}

/// The full landscape: QUIC providers, TCP-only background, unresolved mass.
#[derive(Debug, Clone, Serialize)]
pub struct LandscapeSpec {
    /// QUIC-capable hosting providers.
    pub providers: Vec<ProviderSpec>,
    /// TCP-only reachable domains.
    pub background: Vec<BackgroundSpec>,
    /// `.com/.net/.org` domains that do not resolve at all (paper scale).
    pub cno_unresolved: u64,
    /// Toplist domains that do not resolve (paper scale).
    pub toplist_unresolved: u64,
    /// Fraction of QUIC c/n/o domains that are parked (§5.1: 0.6 %).
    pub parked_share: f64,
}

impl LandscapeSpec {
    /// Total c/n/o QUIC domains at paper scale.
    pub fn total_cno_quic(&self) -> u64 {
        self.providers
            .iter()
            .flat_map(|p| &p.segments)
            .map(|s| s.cno_quic_domains)
            .sum()
    }

    /// Total toplist QUIC domains at paper scale.
    pub fn total_toplist_quic(&self) -> u64 {
        self.providers
            .iter()
            .flat_map(|p| &p.segments)
            .map(|s| s.toplist_quic_domains)
            .sum()
    }
}

/// Build the landscape calibrated to the paper's April 2023 numbers.
pub fn default_landscape() -> LandscapeSpec {
    use StackProfile::*;
    use TcpEcnProfile::*;
    use TransitProfile::*;

    let arelion_clear = Clearing { asn: Asn::ARELION };
    let arelion_remark = Remarking { asn: Asn::ARELION };
    let arelion_cogent = RemarkThenClear {
        first: Asn::ARELION,
        second: Asn::COGENT,
    };

    let providers = vec![
        // Table 2 rank 1: 8.08 M domains, no mirroring, no use; Table 4: no
        // path clearing; Figure 6: full TCP ECN; Figure 5: the bulk of IPv6.
        ProviderSpec {
            name: "Cloudflare",
            asn: Asn(13335),
            sibling_asns: vec![Asn(209242)],
            segments: vec![SegmentSpec::new(
                "cdn",
                8_080_000,
                352_480,
                CloudflareQuiche,
                false,
                Clean,
                0.62,
                90,
                FullEcn,
            )],
        },
        // Table 2 rank 2.  Most domains are Google's own services (no
        // mirroring, TCP ECN not negotiated); the mirroring share is the
        // proxied wix.com population (undercount) plus the ECT(1) experiment.
        ProviderSpec {
            name: "Google",
            asn: Asn(15169),
            sibling_asns: vec![Asn(396982)],
            segments: vec![
                SegmentSpec::new(
                    "own-services",
                    5_500_000,
                    65_800,
                    GoogleFrontend,
                    false,
                    Clean,
                    0.12,
                    90,
                    NoNegotiation,
                ),
                SegmentSpec::new(
                    "wix-proxy",
                    121_400,
                    50,
                    GooglePepyakaProxy,
                    false,
                    Clean,
                    0.20,
                    28,
                    MirrorOnly,
                ),
                SegmentSpec::new(
                    "ect1-experiment",
                    24_500,
                    0,
                    GoogleEct1Remark,
                    false,
                    Clean,
                    0.70,
                    16,
                    MirrorOnly,
                ),
            ],
        },
        // Table 2 rank 3; Tables 4/6: most domains clean-path without
        // mirroring, ~80 k undercount (LiteSpeed ECN flag off), ~31 k behind
        // Arelion re-marking, ~20 k behind Arelion clearing.
        ProviderSpec {
            name: "Hostinger",
            asn: Asn(47583),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "no-ecn",
                    962_950,
                    9_600,
                    LiteSpeedNoEcn,
                    false,
                    Clean,
                    0.03,
                    85,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "undercount",
                    80_000,
                    1_120,
                    LiteSpeedEcnFlagOff,
                    true,
                    Clean,
                    0.20,
                    28,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "remarked-path",
                    31_140,
                    300,
                    LiteSpeedEcnFlagOff,
                    false,
                    arelion_remark,
                    0.0,
                    16,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "cleared-path",
                    20_050,
                    400,
                    LiteSpeedEcnFlagOn,
                    false,
                    arelion_clear,
                    0.0,
                    43,
                    FullEcn,
                ),
            ],
        },
        // Table 2 rank 4.
        ProviderSpec {
            name: "Fastly",
            asn: Asn(54113),
            sibling_asns: vec![],
            segments: vec![SegmentSpec::new(
                "cdn",
                242_600,
                12_290,
                FastlyQuicly,
                false,
                Clean,
                0.50,
                90,
                FullEcn,
            )],
        },
        // Table 2 rank 5; Table 6: 44 k undercount + 4.7 k capable.
        ProviderSpec {
            name: "OVH SAS",
            asn: Asn(16276),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "no-ecn", 103_500, 800, NginxNoEcn, false, Clean, 0.10, 60, FullEcn,
                ),
                SegmentSpec::new(
                    "undercount",
                    44_260,
                    200,
                    LiteSpeedEcnFlagOff,
                    true,
                    Clean,
                    0.05,
                    28,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "capable",
                    4_690,
                    100,
                    LiteSpeedEcnFlagOn,
                    false,
                    Clean,
                    0.30,
                    8,
                    FullEcn,
                ),
            ],
        },
        // Table 2 rank 6; Table 4: 58 % of its domains behind cleared paths
        // (which still *use* ECN on the reverse direction), Table 6: 49 k
        // re-marked.
        ProviderSpec {
            name: "A2 Hosting",
            asn: Asn(55293),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "cleared-use",
                    78_980,
                    900,
                    LiteSpeedEcnFlagOn,
                    true,
                    arelion_clear,
                    0.0,
                    43,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "remarked-path",
                    48_990,
                    760,
                    LiteSpeedEcnFlagOff,
                    false,
                    arelion_remark,
                    0.0,
                    16,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "clean-no-ecn",
                    5_830,
                    770,
                    LiteSpeedNoEcn,
                    false,
                    Clean,
                    0.0,
                    60,
                    FullEcn,
                ),
            ],
        },
        // Table 2 rank 7; Table 6: almost everything undercounts.
        ProviderSpec {
            name: "SingleHop",
            asn: Asn(32475),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "undercount",
                    113_340,
                    1_200,
                    LiteSpeedEcnFlagOff,
                    true,
                    Clean,
                    0.0,
                    28,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "capable",
                    1_080,
                    60,
                    LiteSpeedEcnFlagOn,
                    true,
                    Clean,
                    0.0,
                    8,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn",
                    13_790,
                    200,
                    LiteSpeedNoEcn,
                    false,
                    Clean,
                    0.0,
                    60,
                    FullEcn,
                ),
            ],
        },
        // Table 2 rank 8; Table 4: 100 % of tested domains behind cleared
        // paths since the December 2022 route change onto Arelion; about half
        // still visibly use ECN themselves.
        ProviderSpec {
            name: "Server Central",
            asn: Asn(23352),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "cleared-use",
                    40_440,
                    150,
                    LiteSpeedEcnFlagOn,
                    true,
                    arelion_clear,
                    0.0,
                    43,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "cleared-no-use",
                    46_510,
                    150,
                    LiteSpeedEcnFlagOn,
                    false,
                    arelion_clear,
                    0.0,
                    43,
                    FullEcn,
                ),
            ],
        },
        // Table 3 rank 5 / Table 6 capable rank 1: CloudFront with s2n-quic.
        ProviderSpec {
            name: "Amazon",
            asn: Asn(16509),
            sibling_asns: vec![Asn(14618)],
            segments: vec![
                SegmentSpec::new(
                    "cloudfront",
                    19_990,
                    3_190,
                    S2nQuic,
                    true,
                    Clean,
                    0.25,
                    8,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "other-aws",
                    40_000,
                    120,
                    NginxNoEcn,
                    false,
                    Clean,
                    0.20,
                    40,
                    FullEcn,
                ),
            ],
        },
        // Table 6 capable rank 3.
        ProviderSpec {
            name: "Hetzner",
            asn: Asn(24940),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "capable",
                    2_480,
                    80,
                    GenericAccurate,
                    true,
                    Clean,
                    0.40,
                    8,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn", 25_000, 400, NginxNoEcn, false, Clean, 0.30, 40, FullEcn,
                ),
            ],
        },
        // Table 6 capable rank 4.
        ProviderSpec {
            name: "PrivateSystems",
            asn: Asn(63410),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "capable",
                    1_530,
                    20,
                    GenericAccurate,
                    true,
                    Clean,
                    0.20,
                    8,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn", 3_000, 20, NginxNoEcn, false, Clean, 0.10, 40, FullEcn,
                ),
            ],
        },
        // Table 3 rank 16 / Table 6 undercount rank 5.
        ProviderSpec {
            name: "Interserver",
            asn: Asn(19318),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "undercount",
                    38_570,
                    911,
                    LiteSpeedEcnFlagOff,
                    true,
                    Clean,
                    0.0,
                    28,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn",
                    11_000,
                    220,
                    LiteSpeedNoEcn,
                    false,
                    Clean,
                    0.0,
                    60,
                    FullEcn,
                ),
            ],
        },
        // Table 6 re-marking rank 2.
        ProviderSpec {
            name: "Raiola Networks",
            asn: Asn(203118),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "remarked-path",
                    32_380,
                    150,
                    LiteSpeedEcnFlagOff,
                    false,
                    arelion_remark,
                    0.0,
                    16,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn",
                    6_000,
                    50,
                    LiteSpeedNoEcn,
                    false,
                    Clean,
                    0.0,
                    60,
                    FullEcn,
                ),
            ],
        },
        // Table 6 re-marking rank 5; the double rewrite (§7.3) is seen here.
        ProviderSpec {
            name: "Steadfast",
            asn: Asn(32354),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "remarked-path",
                    13_270,
                    40,
                    LiteSpeedEcnFlagOff,
                    false,
                    arelion_cogent,
                    0.0,
                    16,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "no-ecn", 5_000, 30, NginxNoEcn, false, Clean, 0.0, 40, FullEcn,
                ),
            ],
        },
        // Table 4: Contabo and Sharktech are mostly behind cleared paths.
        ProviderSpec {
            name: "Contabo",
            asn: Asn(51167),
            sibling_asns: vec![],
            segments: vec![
                SegmentSpec::new(
                    "cleared-path",
                    17_250,
                    60,
                    LiteSpeedEcnFlagOn,
                    false,
                    arelion_clear,
                    0.0,
                    43,
                    FullEcn,
                ),
                SegmentSpec::new(
                    "clean-no-ecn",
                    930,
                    20,
                    NginxNoEcn,
                    false,
                    Clean,
                    0.0,
                    40,
                    FullEcn,
                ),
            ],
        },
        ProviderSpec {
            name: "Sharktech",
            asn: Asn(46844),
            sibling_asns: vec![],
            segments: vec![SegmentSpec::new(
                "cleared-path",
                16_970,
                30,
                GenericAccurate,
                false,
                arelion_clear,
                0.0,
                43,
                FullEcn,
            )],
        },
    ];

    // The long tail ("<other>" rows of Tables 2–6): 1.5 M QUIC domains spread
    // over many small hosters, each individually smaller than the top-8
    // providers so that the per-provider tables aggregate them into "<other>"
    // exactly as the paper does, while the per-class totals of Table 5 still
    // come out (undercount 233 k, re-marking 151 k, capable 8 k, cleared 110 k).
    const LONG_TAIL_NAMES: [&str; 12] = [
        "NovaHost",
        "BlueRack Hosting",
        "Webspace24",
        "Krystal Cloud",
        "HostPoint",
        "ServerMania",
        "Infomaniak",
        "Loopia",
        "WebSupport",
        "One.com Group",
        "Combell",
        "Zomro",
    ];
    let mut providers = providers;
    let tail = LONG_TAIL_NAMES.len() as u64;
    for (i, name) in LONG_TAIL_NAMES.iter().enumerate() {
        // Toplist presence of the tail is concentrated on the first entry so
        // that rounding at small scales does not inflate the (tiny) toplist
        // mirroring share the paper reports.
        let top = if i == 0 { 1 } else { 0 };
        let mut segments = vec![
            SegmentSpec::new(
                "undercount",
                232_980 / tail,
                4_000 * top,
                LiteSpeedEcnFlagOff,
                true,
                Clean,
                0.10,
                28,
                FullEcn,
            ),
            SegmentSpec::new(
                "remarked-path",
                151_450 / tail,
                3_000 * top,
                LiteSpeedEcnFlagOff,
                false,
                arelion_remark,
                0.0,
                16,
                FullEcn,
            ),
            SegmentSpec::new(
                "capable",
                8_350 / tail,
                2_500 * top,
                GenericAccurate,
                true,
                Clean,
                0.20,
                8,
                FullEcn,
            ),
            SegmentSpec::new(
                "cleared-path",
                110_050 / tail,
                500 * top,
                LiteSpeedEcnFlagOn,
                true,
                arelion_clear,
                0.0,
                43,
                FullEcn,
            ),
            SegmentSpec::new(
                "no-ecn",
                999_746 / tail,
                62_909 / tail,
                NginxNoEcn,
                false,
                Clean,
                0.05,
                60,
                FullEcn,
            ),
        ];
        if i == 0 {
            // The four "All CE" domains of Table 5 sit behind a single
            // pathological device.
            segments.push(SegmentSpec::new(
                "all-ce",
                4,
                0,
                GenericAccurate,
                false,
                TransitProfile::MarkAllCe { asn: Asn(64699) },
                0.0,
                2,
                FullEcn,
            ));
        }
        providers.push(ProviderSpec {
            name,
            asn: Asn(64600 + i as u32),
            sibling_asns: vec![],
            segments,
        });
    }

    // Figure 6 background: domains reachable via TCP but not QUIC.  The
    // fractions reproduce the TCP-side split (negotiation ≈ 80 %, of which
    // most mirror and use ECN).
    let background = vec![
        BackgroundSpec {
            cno_domains: 86_700_000,
            toplist_domains: 860_000,
            tcp: TcpEcnProfile::FullEcn,
            domains_per_ip: 16,
            ipv6_share: 0.15,
        },
        BackgroundSpec {
            cno_domains: 12_800_000,
            toplist_domains: 130_000,
            tcp: TcpEcnProfile::MirrorOnly,
            domains_per_ip: 16,
            ipv6_share: 0.10,
        },
        BackgroundSpec {
            cno_domains: 14_200_000,
            toplist_domains: 140_000,
            tcp: TcpEcnProfile::NegotiateNoMirror,
            domains_per_ip: 16,
            ipv6_share: 0.10,
        },
        BackgroundSpec {
            cno_domains: 28_400_000,
            toplist_domains: 284_420,
            tcp: TcpEcnProfile::NoNegotiation,
            domains_per_ip: 16,
            ipv6_share: 0.10,
        },
    ];

    LandscapeSpec {
        providers,
        background,
        cno_unresolved: 23_880_000,
        toplist_unresolved: 780_000,
        parked_share: 0.006,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quic_totals_match_the_paper_within_tolerance() {
        let landscape = default_landscape();
        let cno = landscape.total_cno_quic();
        let top = landscape.total_toplist_quic();
        // Paper: 17.30 M c/n/o QUIC domains, 525.58 k toplist QUIC domains.
        assert!((16_900_000..=17_700_000).contains(&cno), "cno = {cno}");
        assert!((500_000..=545_000).contains(&top), "top = {top}");
    }

    #[test]
    fn cloudflare_and_google_dominate() {
        let landscape = default_landscape();
        let count = |name: &str| -> u64 {
            landscape
                .providers
                .iter()
                .find(|p| p.name == name)
                .unwrap()
                .segments
                .iter()
                .map(|s| s.cno_quic_domains)
                .sum()
        };
        assert!(count("Cloudflare") > count("Google"));
        assert!(count("Google") > count("Hostinger"));
        assert!(count("Hostinger") > count("Fastly"));
    }

    #[test]
    fn mirroring_share_is_a_small_minority() {
        let landscape = default_landscape();
        let total = landscape.total_cno_quic() as f64;
        let mirroring: u64 = landscape
            .providers
            .iter()
            .flat_map(|p| &p.segments)
            .filter(|s| {
                // A segment nominally mirrors if its stack mirrors in April 2023
                // and the forward path does not clear the codepoints.
                let b = s.stack.behavior_at(
                    crate::snapshot::SnapshotDate::APR_2023,
                    0.5,
                    s.uses_ecn,
                    false,
                );
                b.mirroring.mirrors()
                    && !matches!(s.transit_v4, TransitProfile::Clearing { .. })
                    && !matches!(s.transit_v4, TransitProfile::RemarkThenClear { .. })
            })
            .map(|s| s.cno_quic_domains)
            .sum();
        let share = mirroring as f64 / total;
        // Paper: 5.6 % of c/n/o QUIC domains mirror.
        assert!((0.04..=0.08).contains(&share), "share = {share}");
    }

    #[test]
    fn tcp_profiles_map_to_behaviours() {
        assert!(TcpEcnProfile::FullEcn.behavior().negotiate_ecn);
        assert!(!TcpEcnProfile::NoNegotiation.behavior().negotiate_ecn);
        assert!(!TcpEcnProfile::NegotiateNoMirror.behavior().mirror_ce);
        assert!(TcpEcnProfile::MirrorOnly.behavior().mirror_ce);
    }

    #[test]
    fn arelion_is_the_impairing_transit() {
        let landscape = default_landscape();
        for provider in &landscape.providers {
            for segment in &provider.segments {
                if let Some(asn) = segment.transit_v4.attributed_asn() {
                    if !matches!(segment.transit_v4, TransitProfile::MarkAllCe { .. }) {
                        assert_eq!(asn, Asn::ARELION, "segment {}", segment.label);
                    }
                }
            }
        }
    }
}
